//! A fast, fixed-seed hasher for the workspace's hot hash maps.
//!
//! The simulation inner loops are dominated by hash-map operations on tiny
//! keys — branch addresses, `(address, pattern)` pairs, instance tags. The
//! standard library's SipHash is DoS-resistant but costs tens of cycles per
//! key; none of these maps ever see attacker-controlled input, so a
//! multiply-rotate hash (the scheme popularized by rustc's FxHash) is the
//! right trade: a couple of cycles per word and *deterministic across
//! processes*, which also makes behaviour easier to reproduce than the
//! per-process random SipHash seeds.
//!
//! Only use these maps for internal keys derived from traces; anything
//! touching untrusted input should stay on the default hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the splitmix64/fxhash family: odd, with well-mixed bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate [`Hasher`] with a fixed seed.
///
/// Not cryptographic and not DoS-resistant — see the module docs for when
/// that trade is acceptable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// [`HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// [`HashSet`] keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(0x1234u64), hash_of(0x1234u64));
        assert_ne!(hash_of(0x1234u64), hash_of(0x1235u64));
        assert_ne!(hash_of((1u64, 2u64)), hash_of((2u64, 1u64)));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 3]));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 4]));
        // Tail shorter than a word still contributes.
        assert_ne!(
            hash_of(b"abcdefgh-x".as_slice()),
            hash_of(b"abcdefgh-y".as_slice())
        );
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.get(&1001), None);
    }
}

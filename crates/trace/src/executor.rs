//! The pipelined chunk executor: one scan of a [`TraceSource`] fanned out
//! to per-PC shard workers.
//!
//! Trace production (workload generation or `.bpt2` pread) is inherently
//! serial — records must come out in order — but everything the analyses
//! build from a trace is keyed per static branch. [`scan_sharded`] splits
//! the two: the producer runs the single scan on the calling thread,
//! packing records into a small ring of recycled 64Ki-record chunk
//! buffers, and *broadcasts* each chunk (an `Arc`) to every shard worker
//! over bounded channels. Each worker sees the full record sequence in
//! order — so order-sensitive state like a `PathWindow` is simply
//! replicated — but does the expensive per-record work only for the PCs
//! its shard owns ([`shard_of`]). Partial results are disjoint by PC, so
//! merging is a plain union and the merged artifact is *identical* (not
//! just equivalent) to a serial build, for any shard count: determinism
//! is by construction, the way `sharded_select` already established, and
//! the conformance `parallel` suite diffs it continuously.
//!
//! Memory is bounded by the ring: `shards + 2` buffers of
//! [`CHUNK_RECORDS`] records exist at any moment, recycled through a free
//! list when the last worker drops its `Arc`. The bounded channels give
//! backpressure — a slow worker stalls the producer rather than letting
//! chunks pile up.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use crate::io::TraceIoError;
use crate::record::{BranchRecord, Pc};
use crate::sink::CHUNK_RECORDS;
use crate::source::TraceSource;

/// Which shard owns a PC, for a given shard count. A multiplicative hash
/// spreads clustered PC values (synthetic workloads allocate them
/// sequentially) evenly across shards; every builder and every merge uses
/// this one function, so partial results are disjoint by construction.
#[must_use]
pub fn shard_of(pc: Pc, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// A recycled buffer of trace records in flight from the producer to the
/// shard workers. Dropping the last reference returns the buffer to the
/// producer's free list.
#[derive(Debug)]
pub struct Chunk {
    records: Vec<BranchRecord>,
    recycle: SyncSender<Vec<BranchRecord>>,
}

impl std::ops::Deref for Chunk {
    type Target = [BranchRecord];

    fn deref(&self) -> &[BranchRecord] {
        &self.records
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.records);
        buf.clear();
        // The free list's capacity equals the number of buffers in
        // existence, so this never blocks; if the producer is already
        // gone the buffer is simply freed.
        let _ = self.recycle.try_send(buf);
    }
}

/// One worker's view of the scan: the full chunk sequence, in order.
#[derive(Debug)]
pub struct ChunkStream {
    rx: Receiver<Arc<Chunk>>,
}

impl Iterator for ChunkStream {
    type Item = Arc<Chunk>;

    fn next(&mut self) -> Option<Arc<Chunk>> {
        self.rx.recv().ok()
    }
}

/// Scans `source` once, streaming every chunk to `shards` workers;
/// `worker(shard, chunks)` runs on its own thread and returns that
/// shard's partial result. Results come back in shard order. See the
/// module docs for the pipeline shape and the determinism argument.
///
/// # Errors
///
/// Propagates the source's scan error; workers are drained first.
///
/// # Panics
///
/// Panics if `shards` is zero, and propagates a worker's panic.
pub fn scan_sharded<S, T, F>(source: &S, shards: usize, worker: F) -> Result<Vec<T>, TraceIoError>
where
    S: TraceSource + Sync + ?Sized,
    T: Send,
    F: Fn(usize, ChunkStream) -> T + Sync,
{
    assert!(shards >= 1, "need at least one shard");
    let ring = shards + 2;
    let (free_tx, free_rx) = sync_channel::<Vec<BranchRecord>>(ring);
    for _ in 0..ring {
        free_tx
            .send(Vec::with_capacity(CHUNK_RECORDS))
            .expect("free ring has capacity for every buffer");
    }
    let mut txs = Vec::with_capacity(shards);
    let mut workers = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = sync_channel::<Arc<Chunk>>(2);
        txs.push(tx);
        workers.push(rx);
    }

    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| scope.spawn(move || worker(shard, ChunkStream { rx })))
            .collect();

        // Producer: repack the source's chunks (whose boundaries are the
        // source's choice) into uniform ring buffers, broadcasting each
        // full one. A send to a dead (panicked) worker fails harmlessly —
        // the chunk's Drop still recycles the buffer — so the free list
        // never starves and the scan runs to completion regardless.
        let mut cur = free_rx.recv().expect("free ring is non-empty");
        let broadcast = |records: Vec<BranchRecord>| {
            let chunk = Arc::new(Chunk {
                records,
                recycle: free_tx.clone(),
            });
            for tx in &txs {
                let _ = tx.send(chunk.clone());
            }
        };
        let scanned = source.scan(&mut |recs: &[BranchRecord]| {
            let mut rest = recs;
            while !rest.is_empty() {
                let room = CHUNK_RECORDS - cur.len();
                let take = room.min(rest.len());
                cur.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if cur.len() == CHUNK_RECORDS {
                    let full = std::mem::replace(
                        &mut cur,
                        free_rx.recv().expect("free ring cycles buffers back"),
                    );
                    broadcast(full);
                }
            }
        });
        if scanned.is_ok() && !cur.is_empty() {
            broadcast(std::mem::take(&mut cur));
        }
        drop(txs); // close the streams: workers run off their queues and finish

        let results = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(t) => t,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect();
        scanned.map(|()| results)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn sample_trace(n: u64) -> Trace {
        Trace::from_records(
            (0..n)
                .map(|i| BranchRecord::conditional(0x10 + (i % 11) * 8, i % 3 == 0))
                .collect(),
        )
    }

    #[test]
    fn every_worker_sees_every_record_in_order() {
        let n = CHUNK_RECORDS as u64 * 2 + 12345;
        let trace = sample_trace(n);
        for shards in [1usize, 2, 3] {
            let counts = scan_sharded(&trace, shards, |_, chunks| {
                let mut total = 0u64;
                let mut prev = None;
                for chunk in chunks {
                    for rec in chunk.iter() {
                        // Records carry their index modulo 11 in the PC;
                        // full-order checks live in the streams tests.
                        let _ = rec.pc;
                        total += 1;
                    }
                    assert!(chunk.len() <= CHUNK_RECORDS);
                    prev = Some(chunk.len());
                }
                assert_eq!(prev, Some((n as usize) % CHUNK_RECORDS));
                total
            })
            .expect("scan");
            assert_eq!(counts, vec![n; shards], "shards = {shards}");
        }
    }

    #[test]
    fn shard_of_partitions_and_is_stable() {
        for shards in [1usize, 2, 7, 64] {
            for pc in 0..2000u64 {
                let s = shard_of(pc, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(pc, shards), "stable");
            }
        }
        assert_eq!(shard_of(0xabc, 1), 0);
    }

    #[test]
    fn worker_results_come_back_in_shard_order() {
        let trace = sample_trace(100);
        let ids = scan_sharded(&trace, 5, |shard, chunks| {
            for _ in chunks {}
            shard
        })
        .expect("scan");
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}

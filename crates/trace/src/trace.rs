use std::fmt;
use std::sync::Arc;

use crate::record::{BranchRecord, Pc};

/// An in-memory dynamic branch trace.
///
/// Records are stored behind an [`Arc`], so cloning a `Trace` is O(1);
/// multi-pass analyses (the oracle selector replays a trace several times)
/// and cross-thread experiment fan-out share the same buffer.
///
/// Build a trace with a [`crate::Recorder`], with [`Trace::from_records`],
/// or by decoding a serialized trace via [`crate::io::read_trace`].
#[derive(Clone, Default)]
pub struct Trace {
    records: Arc<Vec<BranchRecord>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps a vector of records as a trace.
    pub fn from_records(records: Vec<BranchRecord>) -> Self {
        Trace {
            records: Arc::new(records),
        }
    }

    /// All records, in execution order.
    #[inline]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Total number of records of any kind.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Iterates over conditional branches only — the stream predictors are
    /// scored on.
    pub fn conditionals(&self) -> impl Iterator<Item = &BranchRecord> + '_ {
        self.records.iter().filter(|r| r.is_conditional())
    }

    /// Number of dynamic conditional branches.
    pub fn conditional_count(&self) -> usize {
        self.conditionals().count()
    }

    /// Returns a trace holding only the first `n` records.
    ///
    /// Used by the experiment harness to scale trace length without
    /// regenerating workloads.
    pub fn truncated(&self, n: usize) -> Trace {
        if n >= self.len() {
            return self.clone();
        }
        Trace::from_records(self.records[..n].to_vec())
    }

    /// Returns the sub-trace of records `start..end` (clamped to the
    /// trace; empty when `start >= end`). Useful for train/test splits.
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        let end = end.min(self.len());
        let start = start.min(end);
        Trace::from_records(self.records[start..end].to_vec())
    }

    /// The set of distinct conditional-branch addresses, sorted.
    pub fn static_conditional_pcs(&self) -> Vec<Pc> {
        let mut pcs: Vec<Pc> = self.conditionals().map(|r| r.pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        pcs
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("records", &self.records.len())
            .finish()
    }
}

impl FromIterator<BranchRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = BranchRecord>>(iter: I) -> Self {
        Trace::from_records(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl Eq for Trace {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    fn sample() -> Trace {
        Trace::from_records(vec![
            BranchRecord::conditional(8, true),
            BranchRecord {
                pc: 12,
                target: 400,
                taken: true,
                kind: BranchKind::Call,
            },
            BranchRecord::conditional(8, false),
            BranchRecord::conditional(16, true),
        ])
    }

    #[test]
    fn len_and_conditional_count() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.conditional_count(), 3);
        assert!(!t.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let t = sample();
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.records, &u.records));
    }

    #[test]
    fn static_pcs_sorted_dedup() {
        let t = sample();
        assert_eq!(t.static_conditional_pcs(), vec![8, 16]);
    }

    #[test]
    fn truncated_limits_and_noops() {
        let t = sample();
        assert_eq!(t.truncated(2).len(), 2);
        assert_eq!(t.truncated(100).len(), 4);
        assert_eq!(t.truncated(0).len(), 0);
    }

    #[test]
    fn slice_clamps_and_splits() {
        let t = sample();
        assert_eq!(t.slice(1, 3).len(), 2);
        assert_eq!(t.slice(0, 100).len(), 4);
        assert_eq!(t.slice(3, 1).len(), 0);
        assert_eq!(t.slice(0, 2).records()[1], t.records()[1]);
        // A split covers the whole trace.
        let a = t.slice(0, 2);
        let b = t.slice(2, t.len());
        assert_eq!(a.len() + b.len(), t.len());
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..5)
            .map(|i| BranchRecord::conditional(i, i % 2 == 0))
            .collect();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", sample()).is_empty());
    }
}

use crate::fx::FxHashMap;

use serde::{Deserialize, Serialize};

use crate::bps::Words;
use crate::executor::{scan_sharded, shard_of};
use crate::io::TraceIoError;
use crate::profile::{BranchProfile, ProfileEntry};
use crate::record::{BranchRecord, Pc};
use crate::sink::TraceSink;
use crate::source::TraceSource;
use crate::trace::Trace;

/// One static branch's conditional outcomes, packed 64 executions per word.
///
/// Bit `e % 64` of word `e / 64` is the outcome of the branch's `e`-th
/// dynamic execution (`1` = taken), in trace order. The packing makes the
/// §4.1 classification kernels word-wise: per-branch taken counts are
/// popcounts, the k-ago sweep is a shifted XNOR, and the loop/block
/// predictors replay a run-length decomposition extracted with
/// trailing-zero scans ([`OutcomeStream::runs`]) instead of stepping one
/// execution at a time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeStream {
    words: Words,
    len: usize,
}

impl OutcomeStream {
    /// Wraps an already-packed plane (the `.bps` store's re-open path).
    /// Bits at positions `>= len` must be zero, as [`OutcomeStream::push`]
    /// guarantees and the store validates.
    pub(crate) fn from_words(words: Words, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        OutcomeStream { words, len }
    }

    /// Appends one outcome.
    pub fn push(&mut self, taken: bool) {
        let words = self.words.vec_mut();
        if self.len.is_multiple_of(64) {
            words.push(0);
        }
        if taken {
            words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of executions recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no executions were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words; bits at positions `>= len` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Outcome of execution `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= len`.
    pub fn get(&self, e: usize) -> bool {
        assert!(e < self.len, "execution {e} out of range ({})", self.len);
        (self.words[e / 64] >> (e % 64)) & 1 == 1
    }

    /// Number of taken executions (one popcount pass).
    pub fn taken_count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The stream's maximal runs, in order: `(direction, length)` pairs
    /// with adjacent runs alternating in direction and lengths summing to
    /// [`OutcomeStream::len`]. Each run is found with word-wise
    /// trailing-zero scans, so iteration is O(#runs + #words), not O(n).
    pub fn runs(&self) -> StreamRuns<'_> {
        StreamRuns {
            stream: self,
            pos: 0,
        }
    }
}

/// Iterator over a stream's maximal same-direction runs (see
/// [`OutcomeStream::runs`]).
#[derive(Debug, Clone)]
pub struct StreamRuns<'a> {
    stream: &'a OutcomeStream,
    pos: usize,
}

impl Iterator for StreamRuns<'_> {
    type Item = (bool, u64);

    fn next(&mut self) -> Option<(bool, u64)> {
        let n = self.stream.len;
        if self.pos >= n {
            return None;
        }
        let words = &self.stream.words;
        let value = self.stream.get(self.pos);
        // XOR against the run direction turns "differs from `value`" into a
        // set bit; the first set bit at or after `pos` ends the run.
        let flip = if value { !0u64 } else { 0 };
        let mut w = self.pos / 64;
        let mut diff = (words[w] ^ flip) & (!0u64 << (self.pos % 64));
        let end = loop {
            if diff != 0 {
                break w * 64 + diff.trailing_zeros() as usize;
            }
            w += 1;
            if w == words.len() {
                break n;
            }
            diff = words[w] ^ flip;
        };
        // Tail bits past `len` are zero: clamp so a not-taken run does not
        // run off into the padding.
        let end = end.min(n);
        let run = (end - self.pos) as u64;
        self.pos = end;
        Some((value, run))
    }
}

/// Packed per-branch outcome streams of a whole trace — the §4
/// classification artifact, built in one pass.
///
/// Splitting the trace per branch is exact for per-address analysis: every
/// class predictor keeps strictly per-branch state, so replaying one
/// branch's stream is indistinguishable from simulating the interleaved
/// trace. The [`BranchProfile`] is a popcount away
/// ([`BranchStreams::profile`]); no separate profiling pass is needed.
///
/// # Example
///
/// ```
/// use bp_trace::{BranchRecord, BranchStreams, Trace};
///
/// let trace: Trace = (0..100)
///     .map(|i| BranchRecord::conditional(0x8, i % 10 != 0)) // 90% taken
///     .collect();
/// let streams = BranchStreams::of(&trace);
/// let s = streams.get(0x8).unwrap();
/// assert_eq!(s.len(), 100);
/// assert_eq!(s.taken_count(), 90);
/// assert_eq!(streams.profile().get(0x8).unwrap().taken, 90);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStreams {
    streams: FxHashMap<Pc, OutcomeStream>,
    total_dynamic: u64,
}

impl BranchStreams {
    /// Packs every conditional branch's outcomes in one trace pass.
    pub fn of(trace: &Trace) -> Self {
        let mut streams: FxHashMap<Pc, OutcomeStream> = FxHashMap::default();
        let mut total = 0u64;
        for rec in trace.conditionals() {
            streams.entry(rec.pc).or_default().push(rec.taken);
            total += 1;
        }
        BranchStreams {
            streams,
            total_dynamic: total,
        }
    }

    /// An incremental builder: a [`TraceSink`] that folds chunks into
    /// packed per-branch streams as they pass. The streaming counterpart
    /// of [`BranchStreams::of`] — working memory is the packed artifact
    /// itself (~1 bit per dynamic conditional), never the raw records.
    pub fn sink() -> StreamSink {
        StreamSink {
            streams: BranchStreams::default(),
        }
    }

    /// Builds the artifact by scanning a [`TraceSource`] once. Identical
    /// output to [`BranchStreams::of`] on the materialized trace.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error (in-memory sources never fail).
    pub fn from_source<T: TraceSource + ?Sized>(source: &T) -> Result<Self, TraceIoError> {
        let mut sink = BranchStreams::sink();
        source.scan(&mut |chunk| sink.chunk(chunk))?;
        Ok(sink.finish())
    }

    /// Reassembles an artifact from already-built parts (the `.bps`
    /// re-open path and the sharded builders' merge). `total_dynamic`
    /// must equal the summed stream lengths.
    pub(crate) fn from_parts(streams: FxHashMap<Pc, OutcomeStream>, total_dynamic: u64) -> Self {
        debug_assert_eq!(
            streams.values().map(|s| s.len() as u64).sum::<u64>(),
            total_dynamic
        );
        BranchStreams {
            streams,
            total_dynamic,
        }
    }

    /// Builds the artifact with the pipelined chunk executor: one scan on
    /// the calling thread, `shards` workers each packing the streams of
    /// the PCs they own. The partial maps are disjoint by PC, so their
    /// union — and therefore the returned artifact — is identical to
    /// [`BranchStreams::from_source`] for every shard count.
    ///
    /// # Errors
    ///
    /// Propagates the source's scan error.
    pub fn from_source_sharded<T: TraceSource + Sync + ?Sized>(
        source: &T,
        shards: usize,
    ) -> Result<Self, TraceIoError> {
        let shards = shards.max(1);
        let parts = scan_sharded(source, shards, |shard, chunks| {
            let mut streams: FxHashMap<Pc, OutcomeStream> = FxHashMap::default();
            let mut total = 0u64;
            for chunk in chunks {
                for rec in chunk.iter() {
                    if rec.is_conditional() && shard_of(rec.pc, shards) == shard {
                        streams.entry(rec.pc).or_default().push(rec.taken);
                        total += 1;
                    }
                }
            }
            (streams, total)
        })?;
        let mut streams: FxHashMap<Pc, OutcomeStream> = FxHashMap::with_capacity_and_hasher(
            parts.iter().map(|(m, _)| m.len()).sum(),
            Default::default(),
        );
        let mut total = 0u64;
        for (part, part_total) in parts {
            streams.extend(part);
            total += part_total;
        }
        Ok(BranchStreams::from_parts(streams, total))
    }

    /// The stream for a branch, if it executed.
    pub fn get(&self, pc: Pc) -> Option<&OutcomeStream> {
        self.streams.get(&pc)
    }

    /// Iterates `(pc, stream)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &OutcomeStream)> {
        self.streams.iter().map(|(pc, s)| (*pc, s))
    }

    /// Number of static conditional branches.
    pub fn static_count(&self) -> usize {
        self.streams.len()
    }

    /// Total dynamic conditional executions.
    pub fn dynamic_count(&self) -> u64 {
        self.total_dynamic
    }

    /// Derives the branch profile by popcount — identical to
    /// [`BranchProfile::of`] on the source trace.
    pub fn profile(&self) -> BranchProfile {
        let entries = self
            .streams
            .iter()
            .map(|(&pc, s)| {
                (
                    pc,
                    ProfileEntry {
                        executions: s.len() as u64,
                        taken: s.taken_count(),
                    },
                )
            })
            .collect();
        BranchProfile::from_parts(entries, self.total_dynamic)
    }
}

/// Incremental [`BranchStreams`] builder (see [`BranchStreams::sink`]).
#[derive(Debug, Default)]
pub struct StreamSink {
    streams: BranchStreams,
}

impl StreamSink {
    /// Completes the build and returns the packed artifact.
    pub fn finish(self) -> BranchStreams {
        self.streams
    }

    /// The artifact built so far (chunks consumed to date).
    pub fn built(&self) -> &BranchStreams {
        &self.streams
    }
}

impl TraceSink for StreamSink {
    fn chunk(&mut self, records: &[BranchRecord]) {
        for rec in records {
            if rec.is_conditional() {
                self.streams
                    .streams
                    .entry(rec.pc)
                    .or_default()
                    .push(rec.taken);
                self.streams.total_dynamic += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    fn stream_of(bits: &[bool]) -> OutcomeStream {
        let mut s = OutcomeStream::default();
        for &b in bits {
            s.push(b);
        }
        s
    }

    #[test]
    fn push_and_get_across_word_boundaries() {
        let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let s = stream_of(&bits);
        assert_eq!(s.len(), 200);
        assert_eq!(s.words().len(), 4);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(s.get(i), b, "bit {i}");
        }
        assert_eq!(s.taken_count(), bits.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn runs_reconstruct_the_stream() {
        // Run lengths straddling word boundaries, including a 64-aligned
        // run and a final not-taken run that must not leak into padding.
        let lengths = [1usize, 63, 64, 5, 130, 2, 1, 70];
        let mut bits = Vec::new();
        for (i, &l) in lengths.iter().enumerate() {
            bits.extend(std::iter::repeat_n(i % 2 == 0, l));
        }
        let s = stream_of(&bits);
        let runs: Vec<(bool, u64)> = s.runs().collect();
        let expect: Vec<(bool, u64)> = lengths
            .iter()
            .enumerate()
            .map(|(i, &l)| (i % 2 == 0, l as u64))
            .collect();
        assert_eq!(runs, expect);
        assert_eq!(runs.iter().map(|&(_, l)| l).sum::<u64>(), bits.len() as u64);
    }

    #[test]
    fn runs_of_empty_and_uniform_streams() {
        assert_eq!(stream_of(&[]).runs().count(), 0);
        let taken = stream_of(&[true; 100]);
        assert_eq!(taken.runs().collect::<Vec<_>>(), vec![(true, 100)]);
        let not = stream_of(&[false; 65]);
        assert_eq!(not.runs().collect::<Vec<_>>(), vec![(false, 65)]);
    }

    #[test]
    fn streams_split_a_trace_per_branch_in_order() {
        let mut recs = Vec::new();
        for i in 0..50u64 {
            recs.push(BranchRecord::conditional(0x10, i % 2 == 0));
            recs.push(BranchRecord::conditional(0x20, i % 5 == 0));
        }
        let trace = Trace::from_records(recs);
        let streams = BranchStreams::of(&trace);
        assert_eq!(streams.static_count(), 2);
        assert_eq!(streams.dynamic_count(), 100);
        let a = streams.get(0x10).unwrap();
        let b = streams.get(0x20).unwrap();
        for i in 0..50usize {
            assert_eq!(a.get(i), i % 2 == 0);
            assert_eq!(b.get(i), i % 5 == 0);
        }
        assert!(streams.get(0x30).is_none());
    }

    #[test]
    fn profile_matches_direct_profiling() {
        let mut recs = Vec::new();
        for i in 0..777u64 {
            recs.push(BranchRecord::conditional(0x10 + (i % 7) * 8, i % 3 != 0));
        }
        let trace = Trace::from_records(recs);
        let direct = BranchProfile::of(&trace);
        let derived = BranchStreams::of(&trace).profile();
        assert_eq!(derived, direct);
    }

    #[test]
    fn sink_and_source_builds_match_materialized() {
        let mut recs = Vec::new();
        for i in 0..500u64 {
            recs.push(BranchRecord::conditional(0x10 + (i % 5) * 8, i % 3 == 0));
            if i % 11 == 0 {
                recs.push(BranchRecord {
                    pc: 0x900,
                    target: 0x1000,
                    taken: true,
                    kind: crate::record::BranchKind::Call,
                });
            }
        }
        let trace = Trace::from_records(recs.clone());
        let direct = BranchStreams::of(&trace);
        // Chunk-size-independent: misaligned chunk boundaries included.
        for chunk_size in [1usize, 63, 64, 65, 497] {
            let mut sink = BranchStreams::sink();
            for chunk in recs.chunks(chunk_size) {
                sink.chunk(chunk);
            }
            assert_eq!(sink.finish(), direct, "chunk size {chunk_size}");
        }
        assert_eq!(BranchStreams::from_source(&trace).unwrap(), direct);
    }

    #[test]
    fn sharded_build_is_identical_for_every_shard_count() {
        let mut recs = Vec::new();
        for i in 0..5000u64 {
            recs.push(BranchRecord::conditional(0x10 + (i % 23) * 8, i % 3 == 0));
            if i % 7 == 0 {
                recs.push(BranchRecord {
                    pc: 0x900,
                    target: 0x1000,
                    taken: true,
                    kind: crate::record::BranchKind::Jump,
                });
            }
        }
        let trace = Trace::from_records(recs);
        let direct = BranchStreams::of(&trace);
        for shards in [1usize, 2, 7, 64] {
            let sharded = BranchStreams::from_source_sharded(&trace, shards).unwrap();
            assert_eq!(sharded, direct, "shards = {shards}");
        }
    }

    #[test]
    fn empty_trace_has_no_streams() {
        let streams = BranchStreams::of(&Trace::new());
        assert_eq!(streams.static_count(), 0);
        assert_eq!(streams.dynamic_count(), 0);
        assert_eq!(streams.profile().dynamic_count(), 0);
    }
}

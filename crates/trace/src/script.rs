//! First-class synthetic-workload DSL: per-branch outcome scripts,
//! interleaving policies, and streaming emission.
//!
//! Born as the conformance suite's adversarial trace generator, this
//! module is the workspace's one shared way to *say what a trace does*:
//! per-branch outcome scripts built from [`Segment`]s, merged into one
//! dynamic trace by an [`Interleave`] policy. Conformance composes
//! kernel-boundary nasties from it (runs crossing the 255 trip cap,
//! patterns straddling the 64-bit word size), and `bp-probe` composes
//! measurement programs (correlated pairs with variable padding,
//! loop-trip capacity probes, PC-aliasing pairs) against the predictor
//! zoo.
//!
//! Two emission paths, property-tested byte-identical:
//!
//! * [`TraceSpec::build`] — the eager reference: expand every script to
//!   a `Vec<bool>`, materialize the interleaved [`Trace`]. This is the
//!   executable spec, unchanged from its conformance origin so every
//!   canned corpus case stays byte-identical.
//! * [`TraceSpec::emit_into`] — the streaming twin: lazy per-branch
//!   outcome cursors feeding any [`TraceSink`] in [`CHUNK_RECORDS`]
//!   batches, so a probe program or repro workload can flow through the
//!   same chunked pipeline as the paper-scale generators. Only
//!   [`Interleave::Shuffled`] materializes anything proportional to the
//!   trace (its global emission order).

use crate::{BranchRecord, Pc, Trace, TraceBuffer, TraceSink, CHUNK_RECORDS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One phase of a branch's outcome script.
#[derive(Debug, Clone)]
pub enum Segment {
    /// `len` consecutive outcomes in the same direction — trip-cap and
    /// popcount-word stress when `len` nears 255 or a multiple of 64.
    Run {
        /// Direction of every outcome in the run.
        taken: bool,
        /// Run length.
        len: usize,
    },
    /// A fixed pattern repeated verbatim; periods near 63..=65 probe the
    /// ring-capacity boundary of the k-ago sweep.
    Pattern {
        /// One period of outcomes.
        bits: Vec<bool>,
        /// Number of times the period is emitted.
        repeats: usize,
    },
    /// A counted loop: `trip` taken outcomes then one not-taken exit,
    /// repeated `exits` times — `trip` near 255 crosses the run-length
    /// class-replay cap.
    Loop {
        /// Taken iterations before each exit.
        trip: usize,
        /// Number of complete loop executions.
        exits: usize,
    },
    /// A pattern whose polarity inverts whenever the branch's cumulative
    /// outcome index crosses a 64-outcome word boundary — the exact seam
    /// word-parallel kernels split work at.
    WordFlip {
        /// One period of outcomes (pre-inversion).
        bits: Vec<bool>,
        /// Number of times the period is emitted.
        repeats: usize,
    },
}

impl Segment {
    /// Appends this segment's outcomes to `out` (`out.len()` is the
    /// branch's cumulative outcome index, which [`Segment::WordFlip`]
    /// keys its polarity on).
    fn expand(&self, out: &mut Vec<bool>) {
        match self {
            Segment::Run { taken, len } => out.extend(std::iter::repeat_n(*taken, *len)),
            Segment::Pattern { bits, repeats } => {
                for _ in 0..*repeats {
                    out.extend_from_slice(bits);
                }
            }
            Segment::Loop { trip, exits } => {
                for _ in 0..*exits {
                    out.extend(std::iter::repeat_n(true, *trip));
                    out.push(false);
                }
            }
            Segment::WordFlip { bits, repeats } => {
                for _ in 0..*repeats {
                    for &b in bits {
                        let flip = (out.len() / 64) % 2 == 1;
                        out.push(b ^ flip);
                    }
                }
            }
        }
    }

    /// Number of outcomes this segment contributes.
    pub fn len(&self) -> usize {
        match self {
            Segment::Run { len, .. } => *len,
            Segment::Pattern { bits, repeats } => bits.len() * repeats,
            Segment::Loop { trip, exits } => (trip + 1) * exits,
            Segment::WordFlip { bits, repeats } => bits.len() * repeats,
        }
    }

    /// Whether the segment contributes no outcomes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One static branch: an address, an optional backward target, and its
/// outcome script.
#[derive(Debug, Clone)]
pub struct BranchScript {
    /// The branch's address.
    pub pc: Pc,
    /// Taken-target; `Some(t)` with `t <= pc` makes the branch backward.
    pub target: Option<Pc>,
    /// Outcome script, expanded in order.
    pub segments: Vec<Segment>,
}

impl BranchScript {
    /// A forward branch at `pc` with the given script.
    pub fn new(pc: Pc, segments: Vec<Segment>) -> Self {
        BranchScript {
            pc,
            target: None,
            segments,
        }
    }

    /// The branch's full outcome sequence.
    pub fn outcomes(&self) -> Vec<bool> {
        let mut out = Vec::new();
        for seg in &self.segments {
            seg.expand(&mut out);
        }
        out
    }

    /// Number of outcomes the script emits, without expanding it.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Whether the script emits no outcomes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lazy outcome iterator over a [`BranchScript`] — the streaming twin of
/// [`BranchScript::outcomes`], yielding the identical sequence without
/// materializing it.
struct OutcomeCursor<'a> {
    segments: &'a [Segment],
    /// Index of the segment currently being emitted.
    seg: usize,
    /// Position within the current segment.
    pos: usize,
    /// Cumulative outcomes produced — [`Segment::WordFlip`] keys its
    /// polarity on this, exactly as the eager expansion keys on
    /// `out.len()`.
    emitted: usize,
}

impl<'a> OutcomeCursor<'a> {
    fn new(script: &'a BranchScript) -> Self {
        OutcomeCursor {
            segments: &script.segments,
            seg: 0,
            pos: 0,
            emitted: 0,
        }
    }
}

impl Iterator for OutcomeCursor<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        loop {
            let seg = self.segments.get(self.seg)?;
            if self.pos >= seg.len() {
                self.seg += 1;
                self.pos = 0;
                continue;
            }
            let out = match seg {
                Segment::Run { taken, .. } => *taken,
                Segment::Pattern { bits, .. } => bits[self.pos % bits.len()],
                Segment::Loop { trip, .. } => self.pos % (trip + 1) < *trip,
                Segment::WordFlip { bits, .. } => {
                    bits[self.pos % bits.len()] ^ ((self.emitted / 64) % 2 == 1)
                }
            };
            self.pos += 1;
            self.emitted += 1;
            return Some(out);
        }
    }
}

/// How per-branch outcome scripts are merged into one dynamic trace.
#[derive(Debug, Clone, Copy)]
pub enum Interleave {
    /// One outcome from each live branch per round, in script order.
    RoundRobin,
    /// `n` consecutive outcomes from each live branch per round.
    Blocks(usize),
    /// Globally shuffled execution order (seeded, deterministic); every
    /// branch still sees its own outcomes in script order.
    Shuffled(u64),
}

/// A complete trace specification.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// The static branches.
    pub branches: Vec<BranchScript>,
    /// Merge policy.
    pub interleave: Interleave,
}

impl TraceSpec {
    /// Total dynamic branches the spec emits.
    pub fn total_len(&self) -> usize {
        self.branches.iter().map(BranchScript::len).sum()
    }

    /// Builds the dynamic trace eagerly (the executable spec —
    /// [`TraceSpec::emit_into`] is property-tested byte-identical).
    pub fn build(&self) -> Trace {
        let outcomes: Vec<Vec<bool>> = self.branches.iter().map(BranchScript::outcomes).collect();
        let order: Vec<usize> = match self.interleave {
            Interleave::RoundRobin => interleave_blocks(&outcomes, 1),
            Interleave::Blocks(n) => interleave_blocks(&outcomes, n.max(1)),
            Interleave::Shuffled(seed) => {
                let mut order: Vec<usize> = outcomes
                    .iter()
                    .enumerate()
                    .flat_map(|(b, o)| std::iter::repeat_n(b, o.len()))
                    .collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed));
                order
            }
        };
        let mut next = vec![0usize; outcomes.len()];
        let mut recs = Vec::with_capacity(order.len());
        for b in order {
            let script = &self.branches[b];
            let taken = outcomes[b][next[b]];
            next[b] += 1;
            recs.push(record_for(script, taken));
        }
        Trace::from_records(recs)
    }

    /// Streams the dynamic trace into `sink` in [`CHUNK_RECORDS`]
    /// batches, never materializing the per-branch outcome vectors.
    ///
    /// [`Interleave::Shuffled`] is the exception to "never": a seeded
    /// global shuffle needs the full emission order (one `usize` per
    /// dynamic branch) before the first record can be emitted; the
    /// outcomes themselves still stream through lazy cursors.
    pub fn emit_into<S: TraceSink>(&self, sink: &mut S) {
        match self.interleave {
            Interleave::RoundRobin => self.emit_blocks(1, sink),
            Interleave::Blocks(n) => self.emit_blocks(n.max(1), sink),
            Interleave::Shuffled(seed) => {
                let mut order: Vec<usize> = self
                    .branches
                    .iter()
                    .enumerate()
                    .flat_map(|(b, s)| std::iter::repeat_n(b, s.len()))
                    .collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed));
                let mut cursors: Vec<OutcomeCursor> =
                    self.branches.iter().map(OutcomeCursor::new).collect();
                let mut buf = chunk_buffer(order.len());
                for b in order {
                    let taken = cursors[b].next().expect("cursor length matches order");
                    push_record(&mut buf, record_for(&self.branches[b], taken), sink);
                }
                flush(&mut buf, sink);
            }
        }
    }

    /// Block interleaving, streamed: `n` outcomes per live branch per
    /// round until every cursor is drained.
    fn emit_blocks<S: TraceSink>(&self, n: usize, sink: &mut S) {
        let total = self.total_len();
        let mut cursors: Vec<OutcomeCursor> =
            self.branches.iter().map(OutcomeCursor::new).collect();
        let mut buf = chunk_buffer(total);
        let mut remaining = total;
        while remaining > 0 {
            for (b, cursor) in cursors.iter_mut().enumerate() {
                for _ in 0..n {
                    let Some(taken) = cursor.next() else { break };
                    remaining -= 1;
                    push_record(&mut buf, record_for(&self.branches[b], taken), sink);
                }
            }
        }
        flush(&mut buf, sink);
    }
}

/// The record for one dynamic outcome of `script`.
fn record_for(script: &BranchScript, taken: bool) -> BranchRecord {
    let rec = BranchRecord::conditional(script.pc, taken);
    match script.target {
        Some(t) => rec.with_target(t),
        None => rec,
    }
}

fn chunk_buffer(total: usize) -> Vec<BranchRecord> {
    Vec::with_capacity(total.min(CHUNK_RECORDS))
}

fn push_record<S: TraceSink>(buf: &mut Vec<BranchRecord>, rec: BranchRecord, sink: &mut S) {
    buf.push(rec);
    if buf.len() == CHUNK_RECORDS {
        sink.chunk(buf);
        buf.clear();
    }
}

fn flush<S: TraceSink>(buf: &mut Vec<BranchRecord>, sink: &mut S) {
    if !buf.is_empty() {
        sink.chunk(buf);
        buf.clear();
    }
}

/// Convenience: stream the spec into a [`TraceBuffer`] and return the
/// materialized [`Trace`] — the streaming path's answer to
/// [`TraceSpec::build`].
pub fn build_streamed(spec: &TraceSpec) -> Trace {
    let mut buf = TraceBuffer::new();
    spec.emit_into(&mut buf);
    buf.into_trace()
}

/// Emission order for block interleaving: `n` outcomes per live branch
/// per round until all scripts are drained.
pub fn interleave_blocks(outcomes: &[Vec<bool>], n: usize) -> Vec<usize> {
    let total: usize = outcomes.iter().map(Vec::len).sum();
    let mut emitted = vec![0usize; outcomes.len()];
    let mut order = Vec::with_capacity(total);
    while order.len() < total {
        for (b, o) in outcomes.iter().enumerate() {
            let take = n.min(o.len() - emitted[b]);
            order.extend(std::iter::repeat_n(b, take));
            emitted[b] += take;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_expand_as_specified() {
        let script = BranchScript::new(
            0x40,
            vec![
                Segment::Run {
                    taken: true,
                    len: 3,
                },
                Segment::Loop { trip: 2, exits: 1 },
                Segment::Pattern {
                    bits: vec![false, true],
                    repeats: 2,
                },
            ],
        );
        assert_eq!(
            script.outcomes(),
            vec![true, true, true, true, true, false, false, true, false, true]
        );
        assert_eq!(script.len(), script.outcomes().len());
    }

    #[test]
    fn word_flip_inverts_exactly_at_word_boundaries() {
        let script = BranchScript::new(
            0x40,
            vec![Segment::WordFlip {
                bits: vec![true],
                repeats: 192,
            }],
        );
        let outcomes = script.outcomes();
        assert_eq!(outcomes.len(), 192);
        for (i, &o) in outcomes.iter().enumerate() {
            assert_eq!(o, (i / 64) % 2 == 0, "outcome {i}");
        }
    }

    #[test]
    fn interleaves_preserve_per_branch_order() {
        let spec = TraceSpec {
            branches: vec![
                BranchScript::new(
                    0x100,
                    vec![Segment::Pattern {
                        bits: vec![true, false, true],
                        repeats: 5,
                    }],
                ),
                BranchScript::new(
                    0x200,
                    vec![Segment::Run {
                        taken: false,
                        len: 9,
                    }],
                ),
            ],
            interleave: Interleave::Shuffled(7),
        };
        let trace = spec.build();
        assert_eq!(trace.conditional_count(), 24);
        for script in &spec.branches {
            let want = script.outcomes();
            let got: Vec<bool> = trace
                .conditionals()
                .filter(|r| r.pc == script.pc)
                .map(|r| r.taken)
                .collect();
            assert_eq!(got, want, "branch {:#x}", script.pc);
        }
    }

    #[test]
    fn cursor_matches_eager_expansion_across_segment_kinds() {
        // WordFlip polarity keys on the *cumulative* outcome index, so a
        // preceding 70-outcome run must shift its flip seam.
        let script = BranchScript::new(
            0x40,
            vec![
                Segment::Run {
                    taken: true,
                    len: 70,
                },
                Segment::WordFlip {
                    bits: vec![true, false, true],
                    repeats: 50,
                },
                Segment::Loop { trip: 3, exits: 4 },
                Segment::Pattern {
                    bits: vec![],
                    repeats: 3,
                },
                Segment::Pattern {
                    bits: vec![false, true],
                    repeats: 2,
                },
            ],
        );
        let lazy: Vec<bool> = OutcomeCursor::new(&script).collect();
        assert_eq!(lazy, script.outcomes());
    }

    #[test]
    fn emit_into_matches_build_for_every_interleave() {
        let branches = vec![
            BranchScript::new(
                0x100,
                vec![
                    Segment::Pattern {
                        bits: vec![true, false, true],
                        repeats: 30,
                    },
                    Segment::Loop { trip: 5, exits: 3 },
                ],
            ),
            {
                let mut b = BranchScript::new(
                    0x200,
                    vec![Segment::WordFlip {
                        bits: vec![true, true, false],
                        repeats: 40,
                    }],
                );
                b.target = Some(0x80);
                b
            },
            BranchScript::new(
                0x300,
                vec![Segment::Run {
                    taken: false,
                    len: 7,
                }],
            ),
        ];
        for interleave in [
            Interleave::RoundRobin,
            Interleave::Blocks(5),
            Interleave::Blocks(1000),
            Interleave::Shuffled(0xFEED),
        ] {
            let spec = TraceSpec {
                branches: branches.clone(),
                interleave,
            };
            let eager = spec.build();
            let streamed = build_streamed(&spec);
            assert_eq!(
                streamed.records(),
                eager.records(),
                "interleave {interleave:?}"
            );
        }
    }

    #[test]
    fn emit_into_chunks_at_the_streaming_granularity() {
        let spec = TraceSpec {
            branches: vec![BranchScript::new(
                0x400,
                vec![Segment::Run {
                    taken: true,
                    len: CHUNK_RECORDS + 17,
                }],
            )],
            interleave: Interleave::RoundRobin,
        };
        #[derive(Default)]
        struct ChunkSizes(Vec<usize>);
        impl TraceSink for ChunkSizes {
            fn chunk(&mut self, records: &[BranchRecord]) {
                self.0.push(records.len());
            }
        }
        let mut sizes = ChunkSizes::default();
        spec.emit_into(&mut sizes);
        assert_eq!(sizes.0, vec![CHUNK_RECORDS, 17]);
    }
}

//! The shared FNV-1a fingerprint *sidecar* format.
//!
//! A sidecar is a tiny text file sitting next to a cached artifact
//! (`artifact.bpt` → `artifact.bpt.fp`) recording two 64-bit FNV-1a
//! fingerprints behind a version tag:
//!
//! ```text
//! bpfp1 <config:016x> <content:016x>\n
//! ```
//!
//! * `config` fingerprints everything the artifact *depends on* (workload
//!   seed, target, benchmark identity, …) — a mismatch means the cached
//!   bytes answer a different question and must be regenerated.
//! * `content` fingerprints the artifact bytes themselves (or, for
//!   stream files that carry their own framing checksums, a cheap
//!   stand-in such as the total record count) — a mismatch means the
//!   bytes rotted or were swapped.
//!
//! The format began life inside `bp-experiments`' trace cache
//! (`repro --cache`); the serving tier's persistent result cache is its
//! second consumer, so the implementation lives here where both crates
//! can reach it. Every failure mode is a typed [`SidecarError`] — a
//! corrupt or stale sidecar is a *regenerate* signal, never a panic.

use std::fmt;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit offset basis: the seed for *config* fingerprints.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// A distinct seed for *content* fingerprints, so the two hash streams
/// can never be confused even over identical bytes.
pub const CONTENT_OFFSET: u64 = 0x6c62_272e_07bb_0142;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;
/// The version tag heading every sidecar this build writes.
pub const SIDECAR_VERSION: &str = "bpfp1";

/// FNV-1a over `bytes`, folded into `init`. Chain calls to fingerprint
/// several fields into one stream:
///
/// ```
/// use bp_trace::sidecar::{fnv1a, FNV_OFFSET};
/// let fp = fnv1a(fnv1a(FNV_OFFSET, b"gcc"), &42u64.to_le_bytes());
/// assert_ne!(fp, FNV_OFFSET);
/// ```
#[must_use]
pub fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut hash = init;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a sidecar could not be used. All variants mean "do not trust the
/// cached artifact"; [`SidecarError::Missing`] additionally means there
/// was nothing to distrust (a first run, not corruption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SidecarError {
    /// The sidecar file does not exist or could not be read.
    Missing,
    /// The sidecar exists but does not parse as `bpfp1 <hex> <hex>`.
    Malformed,
    /// The sidecar parses but carries a version tag this build does not
    /// know (written by a future format revision).
    WrongVersion,
}

impl fmt::Display for SidecarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SidecarError::Missing => write!(f, "missing fingerprint sidecar"),
            SidecarError::Malformed => write!(f, "malformed fingerprint sidecar"),
            SidecarError::WrongVersion => write!(f, "unknown fingerprint sidecar version"),
        }
    }
}

impl std::error::Error for SidecarError {}

/// The two fingerprints a sidecar records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sidecar {
    /// Fingerprint of everything the artifact depends on.
    pub config: u64,
    /// Fingerprint of the artifact content (or a caller-chosen stand-in
    /// such as a record count).
    pub content: u64,
}

impl Sidecar {
    /// The sidecar path for an artifact: the artifact path with `.fp`
    /// appended (`dir/gcc.bpt` → `dir/gcc.bpt.fp`).
    #[must_use]
    pub fn path_for(artifact: &Path) -> PathBuf {
        let mut os = artifact.as_os_str().to_owned();
        os.push(".fp");
        PathBuf::from(os)
    }

    /// The serialized sidecar text, exactly as written to disk.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{SIDECAR_VERSION} {:016x} {:016x}\n",
            self.config, self.content
        )
    }

    /// Parses sidecar text.
    ///
    /// # Errors
    ///
    /// [`SidecarError::WrongVersion`] for an unknown leading tag,
    /// [`SidecarError::Malformed`] for anything else that is not
    /// `bpfp1 <hex> <hex>`.
    pub fn parse(text: &str) -> Result<Self, SidecarError> {
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some(SIDECAR_VERSION) => {}
            // A hex-only first token is the pre-versioned format (or a
            // truncated file): stale either way.
            Some(_) if text.starts_with("bpfp") => return Err(SidecarError::WrongVersion),
            _ => return Err(SidecarError::Malformed),
        }
        let (Some(config), Some(content), None) = (
            parts.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
            parts.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
            parts.next(),
        ) else {
            return Err(SidecarError::Malformed);
        };
        Ok(Sidecar { config, content })
    }

    /// Writes the sidecar next to `artifact`.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the write.
    pub fn write(&self, artifact: &Path) -> std::io::Result<()> {
        std::fs::write(Self::path_for(artifact), self.render())
    }

    /// Loads and parses the sidecar next to `artifact`.
    ///
    /// # Errors
    ///
    /// [`SidecarError::Missing`] when there is no sidecar file, else as
    /// [`Sidecar::parse`].
    pub fn load(artifact: &Path) -> Result<Self, SidecarError> {
        let text =
            std::fs::read_to_string(Self::path_for(artifact)).map_err(|_| SidecarError::Missing)?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_standard_vectors() {
        // The canonical FNV-1a test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn render_parse_round_trip() {
        let sc = Sidecar {
            config: 0xdead_beef_0123_4567,
            content: 42,
        };
        assert_eq!(Sidecar::parse(&sc.render()), Ok(sc));
    }

    #[test]
    fn parse_rejects_each_failure_mode() {
        assert_eq!(Sidecar::parse(""), Err(SidecarError::Malformed));
        // The pre-versioned two-hash format is stale, not valid.
        assert_eq!(
            Sidecar::parse("0123456789abcdef 0123456789abcdef\n"),
            Err(SidecarError::Malformed)
        );
        assert_eq!(
            Sidecar::parse("bpfp9 0 0\n"),
            Err(SidecarError::WrongVersion)
        );
        assert_eq!(
            Sidecar::parse("bpfp1 xyz 0\n"),
            Err(SidecarError::Malformed)
        );
        assert_eq!(Sidecar::parse("bpfp1 0\n"), Err(SidecarError::Malformed));
        assert_eq!(
            Sidecar::parse("bpfp1 0 0 extra\n"),
            Err(SidecarError::Malformed)
        );
    }

    #[test]
    fn file_round_trip_and_missing() {
        let dir = std::env::temp_dir().join(format!("bp-sidecar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let artifact = dir.join("thing.bpt");
        assert_eq!(Sidecar::load(&artifact), Err(SidecarError::Missing));
        let sc = Sidecar {
            config: 7,
            content: 9,
        };
        sc.write(&artifact).expect("write sidecar");
        assert_eq!(Sidecar::load(&artifact), Ok(sc));
        assert_eq!(
            Sidecar::path_for(&artifact),
            dir.join("thing.bpt.fp"),
            "sidecar sits next to the artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Thin, auditable wrapper over `mmap(2)`.
//!
//! The workspace vendors no crates, so the one foreign call the artifact
//! store needs is declared here directly; the platform C library is
//! already linked into every Rust binary, so no build-system work is
//! involved. This is the only module in the crate allowed to use
//! `unsafe` (the crate is `#![deny(unsafe_code)]`), and the whole unsafe
//! surface is two syscalls plus one slice construction over memory the
//! kernel hands back — the same hand-rolled style as the serving tier's
//! `poll(2)` wrapper.
//!
//! A [`MappedBytes`] is a read-only, private, whole-file mapping exposed
//! as `&[u64]`. The `.bps` artifact format stores little-endian words at
//! 8-byte-aligned offsets in files whose length is a multiple of 8, and
//! `mmap` returns page-aligned memory, so the native word view is valid
//! wherever the mapping path is compiled in (unix, little-endian). On
//! other hosts — or when the syscall fails — [`MappedBytes::map`]
//! returns `None` and the caller falls back to an ordinary buffered
//! read with explicit little-endian decoding.
//!
//! Safety argument for readers of the mapped slice (see DESIGN.md §3i):
//! the mapping is `PROT_READ` + `MAP_PRIVATE`, so nothing in-process can
//! write through it; artifact files are published atomically
//! (tmp + rename) and never truncated in place, so the classic
//! `SIGBUS`-on-shrink hazard requires outside interference — callers
//! validate the file length against the artifact's own declared length
//! *before* mapping, which is also what bounds every slice below.

#[cfg(all(unix, target_endian = "little"))]
mod imp {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    // Protection and flag constants from POSIX; identical on glibc and
    // musl for every architecture this builds on.
    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    // `mmap`'s C prototype takes `void *` and `off_t`; byte pointers and
    // `i64` are layout-compatible on the LP64 targets this compiles for.
    #[allow(unsafe_code)]
    unsafe extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A read-only private mapping of the first `len` bytes of a file.
    #[derive(Debug)]
    pub struct MappedBytes {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and MAP_PRIVATE — no thread can
    // write through it, so shared references across threads are sound.
    #[allow(unsafe_code)]
    unsafe impl Send for MappedBytes {}
    #[allow(unsafe_code)]
    unsafe impl Sync for MappedBytes {}

    impl MappedBytes {
        /// Maps `len` bytes of `file` read-only. Returns `None` (never an
        /// error) when the mapping cannot be made — zero length, a length
        /// that is not a whole number of words or does not fit in memory,
        /// or the syscall failing — so the caller can fall back to a
        /// plain read.
        pub fn map(file: &File, len: u64) -> Option<MappedBytes> {
            let len = usize::try_from(len).ok()?;
            if len == 0 || !len.is_multiple_of(8) {
                return None;
            }
            // SAFETY: a null addr + PROT_READ + MAP_PRIVATE request is
            // always memory-safe: the kernel either picks a fresh range
            // of this process's address space or fails. The fd outlives
            // the call, and the mapping's validity does not depend on it
            // afterwards.
            #[allow(unsafe_code)]
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void *)-1.
            if ptr as isize == -1 {
                return None;
            }
            Some(MappedBytes { ptr, len })
        }

        /// The mapped file as native little-endian words.
        pub fn words(&self) -> &[u64] {
            // SAFETY: `ptr` came from a successful mmap of `len` bytes and
            // stays valid until Drop; mappings are page-aligned, so the
            // u64 alignment holds; `len` is a multiple of 8 (checked in
            // `map`); every bit pattern is a valid u64; and the mapping is
            // read-only, so no aliasing write can exist.
            #[allow(unsafe_code)]
            unsafe {
                std::slice::from_raw_parts(self.ptr.cast::<u64>().cast_const(), self.len / 8)
            }
        }
    }

    impl Drop for MappedBytes {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe exactly the range mmap
            // returned, unmapped exactly once. A failure here leaks the
            // mapping, which is safe; there is nothing useful to do with
            // the error in a destructor.
            #[allow(unsafe_code)]
            unsafe {
                let _ = munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(all(unix, target_endian = "little")))]
mod imp {
    use std::fs::File;

    /// Degenerate fallback for hosts without a valid native word view of
    /// the on-disk format: mapping never succeeds, so callers always use
    /// the buffered-read path. Uninhabited — no value of this type can
    /// exist.
    #[derive(Debug)]
    pub enum MappedBytes {}

    impl MappedBytes {
        /// Always `None`: see the type docs.
        pub fn map(_file: &File, _len: u64) -> Option<MappedBytes> {
            None
        }

        /// Unreachable (the type is uninhabited).
        pub fn words(&self) -> &[u64] {
            match *self {}
        }
    }
}

pub use imp::MappedBytes;

/// Whether this build can memory-map artifacts at all (unix hosts whose
/// native word order matches the on-disk little-endian format).
pub const fn mmap_supported() -> bool {
    cfg!(all(unix, target_endian = "little"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn maps_a_word_file_and_reads_it_back() {
        let dir = std::env::temp_dir().join(format!("bp-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("words.bin");
        let words: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let mut f = std::fs::File::create(&path).expect("create");
        for w in &words {
            f.write_all(&w.to_le_bytes()).expect("write");
        }
        drop(f);
        let file = File::open(&path).expect("open");
        let map = MappedBytes::map(&file, 8000).expect("map");
        assert_eq!(map.words(), &words[..]);
        drop(file); // the mapping must outlive the fd
        assert_eq!(map.words()[999], 999u64.wrapping_mul(0x9E37_79B9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refuses_empty_and_misaligned_lengths() {
        let dir = std::env::temp_dir().join(format!("bp-mmap-odd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("odd.bin");
        std::fs::write(&path, [1u8, 2, 3]).expect("write");
        let file = File::open(&path).expect("open");
        assert!(MappedBytes::map(&file, 0).is_none());
        assert!(MappedBytes::map(&file, 3).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}

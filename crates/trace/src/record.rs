use serde::{Deserialize, Serialize};

/// A branch instruction address.
///
/// Synthetic workloads assign stable, unique `Pc` values to every static
/// branch site; real traces would use instruction addresses. The alias keeps
/// signatures readable and makes it easy to widen later.
pub type Pc = u64;

/// The kind of a control-transfer instruction.
///
/// The analyses in the paper concern conditional branches only, but the
/// trace format carries calls, returns, and unconditional jumps too so the
/// path (and in-path correlation across subroutine boundaries, §3.1) is
/// fully represented by workloads that want it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum BranchKind {
    /// A conditional direct branch; the only kind predictors are scored on.
    #[default]
    Conditional,
    /// A subroutine call.
    Call,
    /// A subroutine return.
    Return,
    /// An unconditional direct jump.
    Jump,
}

impl BranchKind {
    /// Returns `true` for [`BranchKind::Conditional`].
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }
}

/// One dynamic branch execution in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: Pc,
    /// Address the branch transfers to when taken.
    pub target: Pc,
    /// Outcome: `true` if the branch was taken.
    pub taken: bool,
    /// What kind of control transfer this is.
    pub kind: BranchKind,
}

impl BranchRecord {
    /// Creates a conditional branch record.
    ///
    /// The target defaults to `pc + 4` (a forward branch); use
    /// [`BranchRecord::with_target`] to mark backward (loop) branches.
    #[inline]
    pub fn conditional(pc: Pc, taken: bool) -> Self {
        BranchRecord {
            pc,
            target: pc.wrapping_add(4),
            taken,
            kind: BranchKind::Conditional,
        }
    }

    /// Returns a copy of `self` with the given target address.
    #[inline]
    pub fn with_target(mut self, target: Pc) -> Self {
        self.target = target;
        self
    }

    /// A branch is *backward* when its taken-target does not lie after the
    /// branch itself. Backward conditional branches close loops; the §3.2
    /// "iteration" tagging scheme counts them to identify which loop
    /// iteration a prior branch instance belongs to.
    #[inline]
    pub fn is_backward(&self) -> bool {
        self.target <= self.pc
    }

    /// `true` when this record participates in prediction accuracy
    /// accounting (i.e. it is a conditional branch).
    #[inline]
    pub fn is_conditional(&self) -> bool {
        self.kind.is_conditional()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_constructor_defaults_forward() {
        let r = BranchRecord::conditional(100, true);
        assert_eq!(r.pc, 100);
        assert_eq!(r.target, 104);
        assert!(r.taken);
        assert!(!r.is_backward());
        assert!(r.is_conditional());
    }

    #[test]
    fn backward_detection() {
        let fwd = BranchRecord::conditional(100, true).with_target(200);
        let bwd = BranchRecord::conditional(100, true).with_target(40);
        let self_loop = BranchRecord::conditional(100, true).with_target(100);
        assert!(!fwd.is_backward());
        assert!(bwd.is_backward());
        assert!(self_loop.is_backward());
    }

    #[test]
    fn kind_is_conditional() {
        assert!(BranchKind::Conditional.is_conditional());
        assert!(!BranchKind::Call.is_conditional());
        assert!(!BranchKind::Return.is_conditional());
        assert!(!BranchKind::Jump.is_conditional());
    }

    #[test]
    fn wrapping_pc_does_not_panic() {
        let r = BranchRecord::conditional(Pc::MAX, false);
        // Wraps to 3; the record is still well-formed.
        assert_eq!(r.target, 3);
    }
}

//! Chunked trace consumption: the [`TraceSink`] side of the streaming
//! pipeline.
//!
//! The materialize-then-analyze shape (`Vec<BranchRecord>` of the whole
//! trace, then passes over it) caps trace scale at memory: a billion
//! records is ~32 GB. Sinks invert the flow — a producer (a workload
//! generator, a trace file decoder) hands records over in bounded
//! fixed-size chunks ([`CHUNK_RECORDS`] at most), and the consumer either
//! materializes them ([`TraceBuffer`], for small traces and back-compat),
//! folds them into a compact artifact as they pass
//! ([`crate::BranchStreams::sink`]), or spills them to disk
//! (`crate::io::ChunkWriter`). Nothing in the chain ever holds more than
//! one chunk of raw records.

use crate::record::BranchRecord;
use crate::trace::Trace;

/// Number of records per chunk used by the chunked producers
/// ([`crate::Recorder`], the `.bpt` readers). 64 Ki records ≈ 2 MiB of
/// working buffer — large enough to amortize per-chunk dispatch to
/// nothing, small enough that a dozen concurrent streams stay cache- and
/// memory-friendly.
pub const CHUNK_RECORDS: usize = 1 << 16;

/// A consumer of trace records delivered in bounded chunks, in trace
/// order.
///
/// Implementations must treat the concatenation of all `chunk` calls as
/// the trace; chunk boundaries carry no meaning and may fall anywhere
/// (including single-record chunks). Infallible by design: sinks that can
/// fail mid-stream (e.g. file writers) latch their first error internally
/// and surface it from their `finish`-style method, so producers —
/// ordinary instrumented programs — never thread I/O errors through
/// recording calls.
pub trait TraceSink {
    /// Consumes the next run of records.
    fn chunk(&mut self, records: &[BranchRecord]);
}

/// Forwarding: a `&mut` sink is a sink (lets helpers borrow a sink without
/// taking ownership).
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn chunk(&mut self, records: &[BranchRecord]) {
        (**self).chunk(records);
    }
}

/// The materializing sink: collects every chunk into an in-memory
/// [`Trace`]. This is the back-compat path behind
/// [`crate::Recorder::into_trace`]; it grows by chunk (amortized), never
/// pre-reserving for a whole target length.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: Vec<BranchRecord>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The collected records, in order.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Finishes collection and produces the trace.
    pub fn into_trace(self) -> Trace {
        Trace::from_records(self.records)
    }
}

impl TraceSink for TraceBuffer {
    fn chunk(&mut self, records: &[BranchRecord]) {
        self.records.extend_from_slice(records);
    }
}

/// A sink that only counts — for length probes and the peak-memory
/// regression tests, where the records themselves must *not* accumulate.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Total records seen.
    pub records: u64,
    /// Conditional records seen.
    pub conditionals: u64,
}

impl TraceSink for CountingSink {
    fn chunk(&mut self, records: &[BranchRecord]) {
        self.records += records.len() as u64;
        self.conditionals += records.iter().filter(|r| r.is_conditional()).count() as u64;
    }
}

/// Duplicates every chunk into two sinks — e.g. spill a trace to disk
/// while simultaneously folding it into packed outcome streams, in one
/// generation pass.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First destination.
    pub a: A,
    /// Second destination.
    pub b: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Tees into `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn chunk(&mut self, records: &[BranchRecord]) {
        self.a.chunk(records);
        self.b.chunk(records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| BranchRecord::conditional(i * 4, i % 3 == 0))
            .collect()
    }

    #[test]
    fn buffer_concatenates_chunks() {
        let all = recs(10);
        let mut buf = TraceBuffer::new();
        assert!(buf.is_empty());
        buf.chunk(&all[..3]);
        buf.chunk(&all[3..4]);
        buf.chunk(&all[4..]);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.records(), &all[..]);
        assert_eq!(buf.into_trace(), Trace::from_records(all));
    }

    #[test]
    fn counting_sink_counts_without_storing() {
        let mut rs = recs(100);
        rs.push(BranchRecord {
            pc: 8,
            target: 80,
            taken: true,
            kind: crate::record::BranchKind::Call,
        });
        let mut c = CountingSink::default();
        for chunk in rs.chunks(7) {
            c.chunk(chunk);
        }
        assert_eq!(c.records, 101);
        assert_eq!(c.conditionals, 100);
    }

    #[test]
    fn tee_feeds_both() {
        let all = recs(5);
        let mut tee = TeeSink::new(TraceBuffer::new(), CountingSink::default());
        tee.chunk(&all);
        assert_eq!(tee.a.len(), 5);
        assert_eq!(tee.b.records, 5);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed(mut sink: impl TraceSink, records: &[BranchRecord]) {
            sink.chunk(records);
        }
        let mut buf = TraceBuffer::new();
        feed(&mut buf, &recs(3));
        assert_eq!(buf.len(), 3);
    }
}

//! Replayable chunked trace production: the [`TraceSource`] side of the
//! streaming pipeline.
//!
//! Several analyses make more than one pass over the trace (candidate
//! collection then matrix construction; the sweep artifact's two passes).
//! A [`TraceSource`] is a trace that can be *scanned* any number of times,
//! each scan delivering the same records in the same order as bounded
//! chunks — without requiring them to ever exist as one allocation.
//! Implementors include the in-memory [`Trace`] (chunked slices of its
//! records), the on-disk `.bpt` readers (`crate::io::FileTraceSource`),
//! and the regenerating workload sources in `bp-workloads`.

use std::sync::Arc;

use crate::io::TraceIoError;
use crate::record::BranchRecord;
use crate::sink::CHUNK_RECORDS;
use crate::trace::Trace;

/// A trace that can be streamed in order, repeatedly, as bounded chunks.
///
/// Every scan must deliver exactly the same record sequence (sources are
/// deterministic replay handles, not one-shot iterators); chunk boundaries
/// are unspecified and may differ between implementations. `scan` takes
/// `&self` so one source can serve concurrent scans from multiple threads.
pub trait TraceSource {
    /// Streams the whole trace through `visit`, one chunk at a time.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] when the backing store fails or is
    /// corrupt (in-memory and regenerating sources never fail).
    fn scan(&self, visit: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError>;

    /// Number of records a scan will deliver, when cheaply known.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn scan(&self, visit: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError> {
        (**self).scan(visit)
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Arc<T> {
    fn scan(&self, visit: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError> {
        (**self).scan(visit)
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// An in-memory trace is trivially a source: its records, sliced into
/// [`CHUNK_RECORDS`]-sized chunks.
impl TraceSource for Trace {
    fn scan(&self, visit: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError> {
        for chunk in self.records().chunks(CHUNK_RECORDS) {
            visit(chunk);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_scans_its_records_in_order() {
        let recs: Vec<BranchRecord> = (0..(CHUNK_RECORDS as u64 + 100))
            .map(|i| BranchRecord::conditional(i, i % 2 == 0))
            .collect();
        let trace = Trace::from_records(recs.clone());
        let mut seen = Vec::new();
        let mut chunks = 0usize;
        trace
            .scan(&mut |chunk| {
                assert!(chunk.len() <= CHUNK_RECORDS);
                chunks += 1;
                seen.extend_from_slice(chunk);
            })
            .unwrap();
        assert_eq!(seen, recs);
        assert_eq!(chunks, 2);
        assert_eq!(trace.len_hint(), Some(recs.len() as u64));
    }

    #[test]
    fn scans_are_replayable_and_work_through_refs() {
        let trace = Trace::from_records(
            (0..100u64)
                .map(|i| BranchRecord::conditional(i, true))
                .collect(),
        );
        let arc = Arc::new(trace);
        let count = |src: &dyn TraceSource| {
            let mut n = 0u64;
            src.scan(&mut |c| n += c.len() as u64).unwrap();
            n
        };
        assert_eq!(count(&arc), 100);
        assert_eq!(count(&arc), 100, "second scan replays");
        assert_eq!(count(&&*arc), 100);
    }
}

use std::collections::VecDeque;

use crate::record::{BranchRecord, Pc};
use crate::tag::{InstanceTag, TagScheme};

/// One prior conditional branch held in a [`PathWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEntry {
    /// Static address of the branch.
    pub pc: Pc,
    /// Its outcome.
    pub taken: bool,
    /// Whether it was a backward branch (loop back-edge).
    pub backward: bool,
    /// Total backward branches pushed up to and including this entry.
    backward_through: u64,
}

/// Sliding window over the last *n* conditional branches — the "path leading
/// up to the current branch" of paper §3.1/§3.2.
///
/// The window names every visible prior branch instance under both tagging
/// schemes ([`TagScheme::Occurrence`] and [`TagScheme::Iteration`]) so the
/// oracle correlation analysis can treat the two namings as distinct
/// candidate correlated branches, exactly as the paper does.
///
/// Only *conditional* branches enter the window: the first-level history of
/// a two-level predictor records conditional outcomes, and those are the
/// instances whose directions can correlate. (Calls/returns influence the
/// path only through the conditionals executed inside them.)
///
/// Usage order matters: query the window for the context of a branch
/// *before* pushing that branch's own record.
///
/// # Example
///
/// ```
/// use bp_trace::{BranchRecord, InstanceTag, PathWindow};
///
/// let mut w = PathWindow::new(16);
/// w.push(&BranchRecord::conditional(0x10, true));
/// w.push(&BranchRecord::conditional(0x10, false));
/// // Most recent instance of 0x10 was not taken:
/// assert_eq!(w.lookup(InstanceTag::occurrence(0x10, 0)), Some(false));
/// // The one before it was taken:
/// assert_eq!(w.lookup(InstanceTag::occurrence(0x10, 1)), Some(true));
/// // No third instance in the path:
/// assert_eq!(w.lookup(InstanceTag::occurrence(0x10, 2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct PathWindow {
    capacity: usize,
    entries: VecDeque<WindowEntry>,
    backward_total: u64,
}

impl PathWindow {
    /// Creates a window holding up to `capacity` prior conditional branches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "path window capacity must be positive");
        PathWindow {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            backward_total: 0,
        }
    }

    /// Maximum number of prior branches examined (the paper's *n*).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of prior branches currently visible (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no branch has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets all history (the backward-branch clock keeps running).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Pushes a record. Non-conditional records are ignored.
    pub fn push(&mut self, rec: &BranchRecord) {
        if !rec.is_conditional() {
            return;
        }
        if rec.is_backward() {
            self.backward_total += 1;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(WindowEntry {
            pc: rec.pc,
            taken: rec.taken,
            backward: rec.is_backward(),
            backward_through: self.backward_total,
        });
    }

    /// Backward branches executed strictly after `entry`, i.e. between the
    /// entry and the present — the [`TagScheme::Iteration`] index.
    #[inline]
    fn backwards_since(&self, entry: &WindowEntry) -> u64 {
        self.backward_total - entry.backward_through
    }

    /// Looks up the outcome of a single tagged instance, or `None` when the
    /// instance is not in the path.
    ///
    /// For bulk queries prefer [`PathWindow::visible_tags`], which costs one
    /// window scan for all tags.
    pub fn lookup(&self, tag: InstanceTag) -> Option<bool> {
        match tag.scheme {
            TagScheme::Occurrence => self
                .entries
                .iter()
                .rev()
                .filter(|e| e.pc == tag.pc)
                .nth(tag.index as usize)
                .map(|e| e.taken),
            TagScheme::Iteration => self
                .entries
                .iter()
                .rev()
                .find(|e| e.pc == tag.pc && self.backwards_since(e) == u64::from(tag.index))
                .map(|e| e.taken),
        }
    }

    /// The distance, in branches, from the present to the tagged instance:
    /// 1 for the most recently pushed branch, up to `capacity` for the
    /// oldest visible one. `None` when the instance is not in the path.
    ///
    /// This is the §3.6.2 quantity — how far back a correlated branch
    /// sits, and hence how much history a real predictor would need to
    /// reach it.
    pub fn distance(&self, tag: InstanceTag) -> Option<usize> {
        let position =
            match tag.scheme {
                TagScheme::Occurrence => {
                    let mut seen = 0u16;
                    self.entries.iter().rev().position(|e| {
                        if e.pc == tag.pc {
                            let hit = seen == tag.index;
                            seen += 1;
                            hit
                        } else {
                            false
                        }
                    })
                }
                TagScheme::Iteration => self.entries.iter().rev().position(|e| {
                    e.pc == tag.pc && self.backwards_since(e) == u64::from(tag.index)
                }),
            };
        position.map(|p| p + 1)
    }

    /// Appends every visible `(tag, outcome)` pair — both schemes — to
    /// `out`, clearing it first.
    ///
    /// Under [`TagScheme::Iteration`] two instances of the same static
    /// branch can collide on the same backward-branch count (no back-edge
    /// executed between them); the **most recent** instance wins, so each
    /// tag appears at most once in `out`. Iteration indices that overflow
    /// `u16` (pathological: >65535 back-edges inside one window) are
    /// omitted.
    pub fn visible_tags(&self, out: &mut Vec<(InstanceTag, bool)>) {
        out.clear();
        self.scan_visible(|tag, taken, _| out.push((tag, taken)));
    }

    /// As [`PathWindow::visible_tags`], but each entry also carries the
    /// instance's [`PathWindow::distance`] (1 = most recent).
    ///
    /// Because occurrence indices count only more-recent same-pc entries
    /// and iteration collisions resolve to the most recent instance, a tag
    /// visible here at distance *d* is visible — with the same outcome and
    /// distance — in every window of length ≥ *d*, and in no shorter one.
    /// That makes one max-window scan sufficient to derive the visible set
    /// of every sub-window (the incremental window-sweep machinery in
    /// `bp-core` relies on this).
    pub fn visible_tags_with_distance(&self, out: &mut Vec<(InstanceTag, bool, usize)>) {
        out.clear();
        self.scan_visible(|tag, taken, distance| out.push((tag, taken, distance)));
    }

    /// Most-recent-first scan naming every visible instance under both
    /// schemes; occurrence counting needs that order and it makes "most
    /// recent wins" the natural first-hit rule for iteration collisions.
    fn scan_visible(&self, mut emit: impl FnMut(InstanceTag, bool, usize)) {
        let mut seen_iteration: Vec<(Pc, u64)> = Vec::with_capacity(self.entries.len());
        let mut occurrence_counts: Vec<(Pc, u16)> = Vec::with_capacity(self.entries.len());
        for (back, e) in self.entries.iter().rev().enumerate() {
            let distance = back + 1;
            let occ = match occurrence_counts.iter_mut().find(|(pc, _)| *pc == e.pc) {
                Some((_, n)) => {
                    let k = *n;
                    *n += 1;
                    k
                }
                None => {
                    occurrence_counts.push((e.pc, 1));
                    0
                }
            };
            emit(InstanceTag::occurrence(e.pc, occ), e.taken, distance);

            let since = self.backwards_since(e);
            if since <= u64::from(u16::MAX)
                && !seen_iteration
                    .iter()
                    .any(|&(pc, s)| pc == e.pc && s == since)
            {
                seen_iteration.push((e.pc, since));
                emit(
                    InstanceTag::iteration(e.pc, since as u16),
                    e.taken,
                    distance,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(pc: Pc, taken: bool) -> BranchRecord {
        BranchRecord::conditional(pc, taken)
    }

    fn bwd(pc: Pc, taken: bool) -> BranchRecord {
        BranchRecord::conditional(pc, taken).with_target(pc.saturating_sub(32))
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = PathWindow::new(0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut w = PathWindow::new(2);
        w.push(&fwd(1, true));
        w.push(&fwd(2, true));
        w.push(&fwd(3, true));
        assert_eq!(w.len(), 2);
        assert_eq!(w.lookup(InstanceTag::occurrence(1, 0)), None);
        assert_eq!(w.lookup(InstanceTag::occurrence(3, 0)), Some(true));
    }

    #[test]
    fn non_conditionals_ignored() {
        let mut w = PathWindow::new(4);
        w.push(&BranchRecord {
            pc: 9,
            target: 100,
            taken: true,
            kind: crate::BranchKind::Call,
        });
        assert!(w.is_empty());
    }

    #[test]
    fn occurrence_indexing_counts_from_most_recent() {
        let mut w = PathWindow::new(8);
        w.push(&fwd(5, true)); // will be occurrence 2
        w.push(&fwd(5, false)); // occurrence 1
        w.push(&fwd(5, true)); // occurrence 0
        assert_eq!(w.lookup(InstanceTag::occurrence(5, 0)), Some(true));
        assert_eq!(w.lookup(InstanceTag::occurrence(5, 1)), Some(false));
        assert_eq!(w.lookup(InstanceTag::occurrence(5, 2)), Some(true));
        assert_eq!(w.lookup(InstanceTag::occurrence(5, 3)), None);
    }

    #[test]
    fn iteration_indexing_counts_back_edges() {
        let mut w = PathWindow::new(8);
        // Loop body branch at 10, back-edge at 20, two iterations.
        w.push(&fwd(10, true)); // iter 0: body
        w.push(&bwd(20, true)); // iter 0: back-edge
        w.push(&fwd(10, false)); // iter 1: body
        w.push(&bwd(20, true)); // iter 1: back-edge
                                // Body branch of the previous iteration: 2 back-edges since it
                                // (its own iteration's back-edge plus the next one)... count the
                                // back-edges executed after each instance:
                                //   pc=10 taken=true  -> back-edges after it: 2
                                //   pc=10 taken=false -> back-edges after it: 1
        assert_eq!(w.lookup(InstanceTag::iteration(10, 1)), Some(false));
        assert_eq!(w.lookup(InstanceTag::iteration(10, 2)), Some(true));
        assert_eq!(w.lookup(InstanceTag::iteration(10, 0)), None);
    }

    #[test]
    fn iteration_collision_keeps_most_recent() {
        let mut w = PathWindow::new(8);
        // Two instances of pc=7 with no back-edge between them: both have
        // zero backward branches since.
        w.push(&fwd(7, true));
        w.push(&fwd(7, false));
        let mut tags = Vec::new();
        w.visible_tags(&mut tags);
        let iter_hits: Vec<_> = tags
            .iter()
            .filter(|(t, _)| t.scheme == TagScheme::Iteration && t.pc == 7)
            .collect();
        assert_eq!(iter_hits.len(), 1);
        assert!(!iter_hits[0].1); // most recent outcome
        assert_eq!(w.lookup(InstanceTag::iteration(7, 0)), Some(false));
    }

    #[test]
    fn visible_tags_matches_lookup() {
        let mut w = PathWindow::new(6);
        for (i, rec) in [fwd(1, true), bwd(2, true), fwd(1, false), fwd(3, true)]
            .iter()
            .enumerate()
        {
            let _ = i;
            w.push(rec);
        }
        let mut tags = Vec::new();
        w.visible_tags(&mut tags);
        assert!(!tags.is_empty());
        for (tag, outcome) in &tags {
            assert_eq!(w.lookup(*tag), Some(*outcome), "tag {tag:?}");
        }
        // No duplicate tags.
        let mut seen = std::collections::HashSet::new();
        for (tag, _) in &tags {
            assert!(seen.insert(*tag), "duplicate tag {tag:?}");
        }
    }

    #[test]
    fn distance_counts_from_most_recent() {
        let mut w = PathWindow::new(8);
        w.push(&fwd(5, true)); // distance 3
        w.push(&bwd(6, true)); // distance 2
        w.push(&fwd(5, false)); // distance 1
        assert_eq!(w.distance(InstanceTag::occurrence(5, 0)), Some(1));
        assert_eq!(w.distance(InstanceTag::occurrence(5, 1)), Some(3));
        assert_eq!(w.distance(InstanceTag::occurrence(6, 0)), Some(2));
        assert_eq!(w.distance(InstanceTag::occurrence(5, 2)), None);
        // Iteration scheme: pc=5 oldest instance has 1 back-edge since it.
        assert_eq!(w.distance(InstanceTag::iteration(5, 1)), Some(3));
        assert_eq!(w.distance(InstanceTag::iteration(5, 0)), Some(1));
        // Distance agrees with lookup presence.
        let mut tags = Vec::new();
        w.visible_tags(&mut tags);
        for (tag, _) in tags {
            assert!(w.distance(tag).is_some(), "{tag:?}");
        }
    }

    #[test]
    fn visible_tags_with_distance_agrees_with_plain_scan() {
        let mut w = PathWindow::new(6);
        for rec in [fwd(1, true), bwd(2, true), fwd(1, false), fwd(3, true)] {
            w.push(&rec);
        }
        let mut plain = Vec::new();
        let mut with_d = Vec::new();
        w.visible_tags(&mut plain);
        w.visible_tags_with_distance(&mut with_d);
        // Same tags/outcomes in the same order, distances match distance().
        assert_eq!(plain.len(), with_d.len());
        for ((tag, taken), (dtag, dtaken, d)) in plain.iter().zip(&with_d) {
            assert_eq!((tag, taken), (dtag, dtaken));
            assert_eq!(w.distance(*tag), Some(*d), "{tag:?}");
        }
    }

    #[test]
    fn sub_window_visible_set_is_distance_filter_of_max_window() {
        // The property the incremental window sweep rests on: the visible
        // set of a short window equals the long window's set filtered to
        // distance <= short capacity.
        let recs = [
            fwd(1, true),
            bwd(2, true),
            fwd(1, false),
            fwd(3, true),
            bwd(2, false),
            fwd(1, true),
            fwd(4, false),
        ];
        for short_cap in 1..=recs.len() {
            let mut long = PathWindow::new(recs.len());
            let mut short = PathWindow::new(short_cap);
            for rec in &recs {
                long.push(rec);
                short.push(rec);
            }
            let mut long_tags = Vec::new();
            let mut short_tags = Vec::new();
            long.visible_tags_with_distance(&mut long_tags);
            short.visible_tags(&mut short_tags);
            let filtered: Vec<_> = long_tags
                .iter()
                .filter(|(_, _, d)| *d <= short_cap)
                .map(|(t, o, _)| (*t, *o))
                .collect();
            assert_eq!(filtered, short_tags, "cap {short_cap}");
        }
    }

    #[test]
    fn clear_keeps_backward_clock_monotonic() {
        let mut w = PathWindow::new(4);
        w.push(&bwd(2, true));
        w.clear();
        assert!(w.is_empty());
        w.push(&fwd(1, true));
        // Entry pushed after clear must still compute a sane iteration index.
        assert_eq!(w.lookup(InstanceTag::iteration(1, 0)), Some(true));
    }
}

use crate::record::{BranchKind, BranchRecord, Pc};
use crate::trace::Trace;

/// Instrumentation sink used by the synthetic workloads.
///
/// Workloads are ordinary Rust programs; every branch decision they make is
/// reported to a `Recorder`, so the produced [`Trace`] reflects *real*
/// control flow — including the correlated-condition idioms (figures 1 and 2
/// of the paper) that arise naturally from `if (a)` … `if (a && b)` source
/// structure.
///
/// # Example
///
/// ```
/// use bp_trace::Recorder;
///
/// let mut rec = Recorder::new();
/// let a = true;
/// let b = false;
/// if rec.cond(0x10, a) { /* then-side work */ }
/// if rec.cond(0x14, a && b) { /* correlated with the branch above */ }
/// let trace = rec.into_trace();
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    records: Vec<BranchRecord>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Creates a recorder pre-sized for roughly `n` records.
    pub fn with_capacity(n: usize) -> Self {
        Recorder {
            records: Vec::with_capacity(n),
        }
    }

    /// Records a forward conditional branch at `pc` and returns the
    /// condition unchanged so call sites can stay inline in `if`/`while`
    /// expressions.
    #[inline]
    pub fn cond(&mut self, pc: Pc, taken: bool) -> bool {
        self.records.push(BranchRecord::conditional(pc, taken));
        taken
    }

    /// Records a *backward* conditional branch (a loop back-edge) at `pc`.
    ///
    /// The taken-target is placed before the branch so
    /// [`BranchRecord::is_backward`] holds; the §3.2 iteration-tagging
    /// scheme counts these to name loop iterations.
    #[inline]
    pub fn loop_back(&mut self, pc: Pc, taken: bool) -> bool {
        self.records
            .push(BranchRecord::conditional(pc, taken).with_target(pc.saturating_sub(16)));
        taken
    }

    /// Records a subroutine call from `pc` to `target`.
    #[inline]
    pub fn call(&mut self, pc: Pc, target: Pc) {
        self.records.push(BranchRecord {
            pc,
            target,
            taken: true,
            kind: BranchKind::Call,
        });
    }

    /// Records a subroutine return at `pc`.
    #[inline]
    pub fn ret(&mut self, pc: Pc) {
        self.records.push(BranchRecord {
            pc,
            target: 0,
            taken: true,
            kind: BranchKind::Return,
        });
    }

    /// Records an unconditional jump from `pc` to `target`.
    #[inline]
    pub fn jump(&mut self, pc: Pc, target: Pc) {
        self.records.push(BranchRecord {
            pc,
            target,
            taken: true,
            kind: BranchKind::Jump,
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of *conditional* records captured so far; workload drivers use
    /// this to stop once a target trace length is reached.
    pub fn conditional_len(&self) -> usize {
        self.records.iter().filter(|r| r.is_conditional()).count()
    }

    /// Finishes recording and produces the trace.
    pub fn into_trace(self) -> Trace {
        Trace::from_records(self.records)
    }
}

impl Extend<BranchRecord> for Recorder {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_passes_value_through() {
        let mut rec = Recorder::new();
        assert!(rec.cond(1, true));
        assert!(!rec.cond(2, false));
        let t = rec.into_trace();
        assert!(t.records()[0].taken);
        assert!(!t.records()[1].taken);
    }

    #[test]
    fn loop_back_is_backward() {
        let mut rec = Recorder::new();
        rec.loop_back(100, true);
        let t = rec.into_trace();
        assert!(t.records()[0].is_backward());
    }

    #[test]
    fn loop_back_at_low_pc_saturates() {
        let mut rec = Recorder::new();
        rec.loop_back(4, true);
        let t = rec.into_trace();
        assert!(t.records()[0].is_backward());
        assert_eq!(t.records()[0].target, 0);
    }

    #[test]
    fn mixed_kinds_counted() {
        let mut rec = Recorder::new();
        rec.cond(1, true);
        rec.call(2, 100);
        rec.cond(101, false);
        rec.ret(102);
        rec.jump(3, 50);
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.conditional_len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut rec = Recorder::with_capacity(4);
        rec.extend((0..4).map(|i| BranchRecord::conditional(i, true)));
        assert_eq!(rec.len(), 4);
        assert!(!rec.is_empty());
    }
}

use crate::record::{BranchKind, BranchRecord, Pc};
use crate::sink::{TraceBuffer, TraceSink, CHUNK_RECORDS};
use crate::trace::Trace;

/// Instrumentation front-end used by the synthetic workloads.
///
/// Workloads are ordinary Rust programs; every branch decision they make is
/// reported to a `Recorder`, so the produced [`Trace`] reflects *real*
/// control flow — including the correlated-condition idioms (figures 1 and 2
/// of the paper) that arise naturally from `if (a)` … `if (a && b)` source
/// structure.
///
/// The recorder is a thin chunking adapter over a [`TraceSink`]: records
/// accumulate in a bounded buffer (at most [`CHUNK_RECORDS`]) and are
/// flushed to the sink as full chunks, so a recorder driving an on-disk
/// writer or a streaming artifact builder holds ~2 MiB of records no
/// matter how long the trace grows. The default sink is the materializing
/// [`TraceBuffer`], which keeps the original collect-then-analyze workflow
/// working unchanged.
///
/// # Example
///
/// ```
/// use bp_trace::Recorder;
///
/// let mut rec = Recorder::new();
/// let a = true;
/// let b = false;
/// if rec.cond(0x10, a) { /* then-side work */ }
/// if rec.cond(0x14, a && b) { /* correlated with the branch above */ }
/// let trace = rec.into_trace();
/// assert_eq!(trace.len(), 2);
/// ```
///
/// Streaming into a counting sink (no records retained):
///
/// ```
/// use bp_trace::{CountingSink, Recorder};
///
/// let mut rec = Recorder::with_sink(CountingSink::default());
/// for i in 0..10u64 {
///     rec.cond(0x400 + i, i % 2 == 0);
/// }
/// let counts = rec.into_sink();
/// assert_eq!(counts.records, 10);
/// ```
#[derive(Debug, Default)]
pub struct Recorder<S: TraceSink = TraceBuffer> {
    sink: S,
    buf: Vec<BranchRecord>,
    total: usize,
    conditionals: usize,
}

impl Recorder<TraceBuffer> {
    /// Creates an empty materializing recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Creates a materializing recorder sized for roughly `n` records.
    ///
    /// The reservation is clamped to one chunk: the recorder's working
    /// buffer is bounded by design, and the backing [`TraceBuffer`] grows
    /// amortized per chunk instead of pre-reserving a whole target-length
    /// trace (~16 GB at a billion records).
    pub fn with_capacity(n: usize) -> Self {
        Recorder {
            sink: TraceBuffer::new(),
            buf: Vec::with_capacity(n.min(CHUNK_RECORDS)),
            total: 0,
            conditionals: 0,
        }
    }

    /// Finishes recording and produces the in-memory trace.
    pub fn into_trace(self) -> Trace {
        self.into_sink().into_trace()
    }
}

impl<S: TraceSink> Recorder<S> {
    /// Creates a recorder that flushes chunks into `sink`.
    pub fn with_sink(sink: S) -> Self {
        Recorder {
            sink,
            buf: Vec::new(),
            total: 0,
            conditionals: 0,
        }
    }

    #[inline]
    fn push(&mut self, rec: BranchRecord) {
        if self.buf.len() == CHUNK_RECORDS {
            self.flush();
        }
        if rec.is_conditional() {
            self.conditionals += 1;
        }
        self.total += 1;
        self.buf.push(rec);
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.chunk(&self.buf);
            self.buf.clear();
        }
    }

    /// Records a forward conditional branch at `pc` and returns the
    /// condition unchanged so call sites can stay inline in `if`/`while`
    /// expressions.
    #[inline]
    pub fn cond(&mut self, pc: Pc, taken: bool) -> bool {
        self.push(BranchRecord::conditional(pc, taken));
        taken
    }

    /// Records a *backward* conditional branch (a loop back-edge) at `pc`.
    ///
    /// The taken-target is placed before the branch so
    /// [`BranchRecord::is_backward`] holds; the §3.2 iteration-tagging
    /// scheme counts these to name loop iterations.
    #[inline]
    pub fn loop_back(&mut self, pc: Pc, taken: bool) -> bool {
        self.push(BranchRecord::conditional(pc, taken).with_target(pc.saturating_sub(16)));
        taken
    }

    /// Records a subroutine call from `pc` to `target`.
    #[inline]
    pub fn call(&mut self, pc: Pc, target: Pc) {
        self.push(BranchRecord {
            pc,
            target,
            taken: true,
            kind: BranchKind::Call,
        });
    }

    /// Records a subroutine return at `pc`.
    #[inline]
    pub fn ret(&mut self, pc: Pc) {
        self.push(BranchRecord {
            pc,
            target: 0,
            taken: true,
            kind: BranchKind::Return,
        });
    }

    /// Records an unconditional jump from `pc` to `target`.
    #[inline]
    pub fn jump(&mut self, pc: Pc, target: Pc) {
        self.push(BranchRecord {
            pc,
            target,
            taken: true,
            kind: BranchKind::Jump,
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of *conditional* records captured so far; workload drivers use
    /// this to stop once a target trace length is reached. O(1) — counted
    /// at record time, since already-flushed chunks are gone.
    pub fn conditional_len(&self) -> usize {
        self.conditionals
    }

    /// Flushes any buffered records and returns the sink.
    pub fn into_sink(mut self) -> S {
        self.flush();
        self.sink
    }
}

impl<S: TraceSink> Extend<BranchRecord> for Recorder<S> {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        for rec in iter {
            self.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;

    #[test]
    fn cond_passes_value_through() {
        let mut rec = Recorder::new();
        assert!(rec.cond(1, true));
        assert!(!rec.cond(2, false));
        let t = rec.into_trace();
        assert!(t.records()[0].taken);
        assert!(!t.records()[1].taken);
    }

    #[test]
    fn loop_back_is_backward() {
        let mut rec = Recorder::new();
        rec.loop_back(100, true);
        let t = rec.into_trace();
        assert!(t.records()[0].is_backward());
    }

    #[test]
    fn loop_back_at_low_pc_saturates() {
        let mut rec = Recorder::new();
        rec.loop_back(4, true);
        let t = rec.into_trace();
        assert!(t.records()[0].is_backward());
        assert_eq!(t.records()[0].target, 0);
    }

    #[test]
    fn mixed_kinds_counted() {
        let mut rec = Recorder::new();
        rec.cond(1, true);
        rec.call(2, 100);
        rec.cond(101, false);
        rec.ret(102);
        rec.jump(3, 50);
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.conditional_len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut rec = Recorder::with_capacity(4);
        rec.extend((0..4).map(|i| BranchRecord::conditional(i, true)));
        assert_eq!(rec.len(), 4);
        assert!(!rec.is_empty());
    }

    #[test]
    fn capacity_reservation_is_clamped_to_one_chunk() {
        let rec = Recorder::with_capacity(1_000_000_000);
        assert!(rec.buf.capacity() <= CHUNK_RECORDS);
    }

    #[test]
    fn chunks_flush_to_sink_and_counts_survive() {
        let n = CHUNK_RECORDS + 17;
        let mut rec = Recorder::with_sink(CountingSink::default());
        for i in 0..n {
            rec.cond(i as u64, i % 2 == 0);
        }
        rec.call(1, 2);
        assert_eq!(rec.len(), n + 1);
        assert_eq!(rec.conditional_len(), n);
        assert!(rec.buf.len() < n, "first chunk must have flushed");
        let counts = rec.into_sink();
        assert_eq!(counts.records, (n + 1) as u64);
        assert_eq!(counts.conditionals, n as u64);
    }

    #[test]
    fn chunked_materialization_matches_direct() {
        let n = CHUNK_RECORDS * 2 + 5;
        let mut a = Recorder::new();
        let mut b = Recorder::with_sink(TraceBuffer::new());
        for i in 0..n {
            let pc = (i % 97) as u64 * 4;
            let taken = i % 3 != 0;
            a.cond(pc, taken);
            b.cond(pc, taken);
        }
        assert_eq!(a.into_trace(), b.into_sink().into_trace());
    }
}

//! Shared property-test trace generators (feature `testgen`).
//!
//! The workspace's proptest suites all want the same shape of random
//! trace — a handful of static conditional PCs, random outcomes, and an
//! occasional backward target so `BackwardTaken`-style heuristics see
//! both directions. This module is the single home for that strategy;
//! the per-crate test files wrap it with their historical parameters
//! instead of each carrying a private copy.
//!
//! Compiled only when the `testgen` feature is enabled (the workspace
//! crates turn it on from `[dev-dependencies]`), so the proptest shim
//! never leaks into production builds.

use proptest::prelude::*;

use crate::{BranchRecord, Trace};

/// Strategy producing traces of `len` random conditional branches drawn
/// from `pc_count` static sites.
///
/// Site addresses are `pc_base + 4*i` for `i in 0..pc_count`; each
/// record flips a coin for its outcome and another for whether it is a
/// backward branch (target `pc_base / 2`, below every site) or a
/// forward fall-through.
pub fn arb_trace(
    pc_count: u64,
    pc_base: u64,
    len: core::ops::Range<usize>,
) -> impl Strategy<Value = Trace> {
    let backward_target = pc_base / 2;
    prop::collection::vec(
        (0u64..pc_count, any::<bool>(), any::<bool>()).prop_map(move |(pc, taken, backward)| {
            let rec = BranchRecord::conditional(pc * 4 + pc_base, taken);
            if backward {
                rec.with_target(backward_target)
            } else {
                rec
            }
        }),
        len,
    )
    .prop_map(Trace::from_records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::rng_for;

    #[test]
    fn traces_respect_site_set_and_length() {
        let strat = arb_trace(12, 0x100, 1..50);
        let mut rng = rng_for("testgen", 0);
        for _ in 0..32 {
            let trace = strat.sample(&mut rng);
            assert!(!trace.records().is_empty() && trace.records().len() < 50);
            for rec in trace.conditionals() {
                assert!((0x100..0x100 + 12 * 4).contains(&rec.pc));
                assert!(rec.is_backward() || rec.target > rec.pc);
            }
        }
    }
}

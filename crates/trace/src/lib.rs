//! Branch trace infrastructure for the correlation-and-predictability study.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on:
//!
//! * [`BranchRecord`] / [`BranchKind`] — the unit of a trace: one dynamic
//!   branch with its address, target, and outcome.
//! * [`Trace`] — an in-memory dynamic branch trace with cheap cloning and
//!   binary (de)serialization (see [`io`]).
//! * [`Recorder`] — the instrumentation API used by the synthetic workloads:
//!   real Rust control flow calls into the recorder, which appends records.
//! * [`PathWindow`] — a sliding window over the last *n* conditional
//!   branches, producing the dual *instance tags* of Evers et al. §3.2
//!   ([`InstanceTag`], [`TagScheme`]) and the ternary [`TagOutcome`] used by
//!   selective-history predictors (§3.4).
//! * [`TraceStats`] / [`BranchProfile`] — static/dynamic branch statistics
//!   and per-branch bias profiles.
//! * [`BranchStreams`] — per-branch outcomes packed 64 per u64 word, the
//!   bit-parallel substrate of the §4 classification kernels (profiles by
//!   popcount, run-length decomposition by trailing-zero scans).
//! * [`script`] — the synthetic-workload DSL: per-branch outcome scripts
//!   ([`script::Segment`], [`script::BranchScript`]) interleaved into one
//!   trace ([`script::TraceSpec`]), emitted eagerly or streamed through
//!   any [`TraceSink`]. Shared by the conformance corpus and the
//!   `bp-probe` measurement programs.
//!
//! # Example
//!
//! ```
//! use bp_trace::{Recorder, TraceStats};
//!
//! let mut rec = Recorder::new();
//! for i in 0..10u32 {
//!     // A "for-type" loop branch: taken 9 times, then not taken.
//!     rec.cond(0x400, i < 9);
//! }
//! let trace = rec.into_trace();
//! let stats = TraceStats::of(&trace);
//! assert_eq!(stats.dynamic_conditional, 10);
//! assert_eq!(stats.static_conditional, 1);
//! ```

// `deny` rather than `forbid`: the mmap module (the `.bps` artifact
// store's zero-copy re-open path) carries the crate's only
// `#[allow(unsafe_code)]` exceptions, mirroring bp-serve's `sys.rs`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bps;
mod executor;
pub mod fx;
pub mod io;
pub mod mmap;
mod profile;
mod record;
mod recorder;
pub mod script;
pub mod sidecar;
mod sink;
mod source;
mod stats;
mod streams;
mod tag;
#[cfg(any(test, feature = "testgen"))]
pub mod testgen;
mod trace;
mod window;

pub use bps::{BpsBytes, BpsError, Words};
pub use executor::{scan_sharded, shard_of, Chunk, ChunkStream};
pub use fx::{FxHashMap, FxHashSet};
pub use profile::{BranchProfile, ProfileEntry};
pub use record::{BranchKind, BranchRecord, Pc};
pub use recorder::Recorder;
pub use sink::{CountingSink, TeeSink, TraceBuffer, TraceSink, CHUNK_RECORDS};
pub use source::TraceSource;
pub use stats::TraceStats;
pub use streams::{BranchStreams, OutcomeStream, StreamRuns, StreamSink};
pub use tag::{pattern_count, pattern_index, InstanceTag, TagOutcome, TagScheme};
pub use trace::Trace;
pub use window::{PathWindow, WindowEntry};

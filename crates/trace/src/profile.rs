use crate::fx::FxHashMap;

use serde::{Deserialize, Serialize};

use crate::record::Pc;
use crate::trace::Trace;

/// Per-static-branch execution profile entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Dynamic executions of the branch.
    pub executions: u64,
    /// How many of those were taken.
    pub taken: u64,
}

impl ProfileEntry {
    /// Taken rate in `[0, 1]`; zero when never executed.
    pub fn taken_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.taken as f64 / self.executions as f64
        }
    }

    /// Bias towards the predominant direction, in `[0.5, 1]` for an
    /// executed branch.
    pub fn bias(&self) -> f64 {
        let r = self.taken_rate();
        r.max(1.0 - r)
    }

    /// The predominant direction over the whole run (`true` = taken).
    /// Ties (exactly 50% taken) report taken.
    pub fn majority_direction(&self) -> bool {
        self.taken * 2 >= self.executions
    }

    /// Dynamic executions an ideal static predictor (predict the majority
    /// direction throughout) gets right — the paper's "ideal static"
    /// baseline (§4.1).
    pub fn ideal_static_correct(&self) -> u64 {
        self.taken.max(self.executions - self.taken)
    }
}

/// Per-branch profile of a whole trace: execution and taken counts for every
/// static conditional branch.
///
/// This is what "ideal static" prediction, bias classification ("more than
/// 99% biased"), and dynamic-frequency weighting are computed from.
///
/// # Example
///
/// ```
/// use bp_trace::{BranchProfile, BranchRecord, Trace};
///
/// let trace: Trace = (0..100)
///     .map(|i| BranchRecord::conditional(0x8, i % 10 != 0)) // 90% taken
///     .collect();
/// let profile = BranchProfile::of(&trace);
/// assert_eq!(profile.get(0x8).unwrap().taken, 90);
/// assert!((profile.ideal_static_accuracy() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchProfile {
    entries: FxHashMap<Pc, ProfileEntry>,
    total_dynamic: u64,
}

impl BranchProfile {
    /// Builds the profile of a trace in one pass.
    pub fn of(trace: &Trace) -> Self {
        let mut entries: FxHashMap<Pc, ProfileEntry> = FxHashMap::default();
        let mut total = 0u64;
        for rec in trace.conditionals() {
            let e = entries.entry(rec.pc).or_default();
            e.executions += 1;
            if rec.taken {
                e.taken += 1;
            }
            total += 1;
        }
        BranchProfile {
            entries,
            total_dynamic: total,
        }
    }

    /// Assembles a profile from already-aggregated parts (used by
    /// `BranchStreams::profile`, which derives the counts by popcount).
    pub(crate) fn from_parts(entries: FxHashMap<Pc, ProfileEntry>, total_dynamic: u64) -> Self {
        BranchProfile {
            entries,
            total_dynamic,
        }
    }

    /// Profile entry for a branch, if it executed.
    pub fn get(&self, pc: Pc) -> Option<&ProfileEntry> {
        self.entries.get(&pc)
    }

    /// Number of static conditional branches.
    pub fn static_count(&self) -> usize {
        self.entries.len()
    }

    /// Total dynamic conditional executions.
    pub fn dynamic_count(&self) -> u64 {
        self.total_dynamic
    }

    /// Iterates over `(pc, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &ProfileEntry)> {
        self.entries.iter().map(|(pc, e)| (*pc, e))
    }

    /// Total correct predictions of the ideal static predictor across the
    /// whole trace.
    pub fn ideal_static_correct(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.ideal_static_correct())
            .sum()
    }

    /// Ideal-static prediction accuracy in `[0, 1]`; zero for an empty
    /// trace.
    pub fn ideal_static_accuracy(&self) -> f64 {
        if self.total_dynamic == 0 {
            0.0
        } else {
            self.ideal_static_correct() as f64 / self.total_dynamic as f64
        }
    }

    /// Fraction of *dynamic* branches whose static branch is biased more
    /// than `threshold` (e.g. `0.99` for the paper's "more than 99% biased").
    pub fn dynamic_fraction_biased_above(&self, threshold: f64) -> f64 {
        if self.total_dynamic == 0 {
            return 0.0;
        }
        let biased: u64 = self
            .entries
            .values()
            .filter(|e| e.bias() > threshold)
            .map(|e| e.executions)
            .sum();
        biased as f64 / self.total_dynamic as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    fn trace_of(outcomes: &[(Pc, bool)]) -> Trace {
        outcomes
            .iter()
            .map(|&(pc, taken)| BranchRecord::conditional(pc, taken))
            .collect()
    }

    #[test]
    fn entry_math() {
        let e = ProfileEntry {
            executions: 10,
            taken: 7,
        };
        assert!((e.taken_rate() - 0.7).abs() < 1e-12);
        assert!((e.bias() - 0.7).abs() < 1e-12);
        assert!(e.majority_direction());
        assert_eq!(e.ideal_static_correct(), 7);

        let n = ProfileEntry {
            executions: 10,
            taken: 3,
        };
        assert!(!n.majority_direction());
        assert_eq!(n.ideal_static_correct(), 7);
    }

    #[test]
    fn tie_prefers_taken() {
        let e = ProfileEntry {
            executions: 4,
            taken: 2,
        };
        assert!(e.majority_direction());
        assert_eq!(e.ideal_static_correct(), 2);
    }

    #[test]
    fn profile_counts() {
        let t = trace_of(&[(1, true), (1, true), (1, false), (2, false)]);
        let p = BranchProfile::of(&t);
        assert_eq!(p.static_count(), 2);
        assert_eq!(p.dynamic_count(), 4);
        assert_eq!(p.get(1).unwrap().taken, 2);
        assert_eq!(p.get(2).unwrap().taken, 0);
        assert!(p.get(3).is_none());
        // Ideal static: branch 1 -> 2 correct (taken), branch 2 -> 1 correct.
        assert_eq!(p.ideal_static_correct(), 3);
        assert!((p.ideal_static_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bias_fraction() {
        // Branch 1: 100% biased, 3 execs. Branch 2: 50%, 2 execs.
        let t = trace_of(&[(1, true), (1, true), (1, true), (2, true), (2, false)]);
        let p = BranchProfile::of(&t);
        assert!((p.dynamic_fraction_biased_above(0.99) - 0.6).abs() < 1e-12);
        assert!((p.dynamic_fraction_biased_above(0.4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = BranchProfile::of(&Trace::new());
        assert_eq!(p.static_count(), 0);
        assert_eq!(p.ideal_static_accuracy(), 0.0);
        assert_eq!(p.dynamic_fraction_biased_above(0.5), 0.0);
    }
}

//! Binary trace serialization.
//!
//! Traces persist in a compact varint format so generated workloads can be
//! cached on disk and re-analyzed without regeneration:
//!
//! ```text
//! magic "BPT1"
//! varint record-count
//! per record:
//!   flags byte   bit0 = taken, bits1-2 = kind
//!   varint pc
//!   varint zigzag(target - pc)
//! ```
//!
//! Readers and writers are generic over [`std::io::Read`] / [`std::io::Write`]
//! (a `&mut` reference works wherever an owned reader/writer does).

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use crate::record::{BranchKind, BranchRecord};
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"BPT1";

/// Error produced when decoding a serialized trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// A varint ran past 10 bytes or the stream ended inside a record.
    Corrupt(&'static str),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => write!(f, "stream is not a serialized trace"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace stream: {what}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn write_varint<W: Write>(mut w: W, mut v: u64) -> Result<(), TraceIoError> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(mut r: R) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(TraceIoError::Corrupt("varint too long"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Call => 1,
        BranchKind::Return => 2,
        BranchKind::Jump => 3,
    }
}

fn kind_from_code(code: u8) -> Result<BranchKind, TraceIoError> {
    match code {
        0 => Ok(BranchKind::Conditional),
        1 => Ok(BranchKind::Call),
        2 => Ok(BranchKind::Return),
        3 => Ok(BranchKind::Jump),
        _ => Err(TraceIoError::Corrupt("bad branch kind")),
    }
}

/// Serializes a trace to a writer.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the writer fails.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use bp_trace::{io, BranchRecord, Trace};
///
/// let trace = Trace::from_records(vec![BranchRecord::conditional(64, true)]);
/// let mut buf = Vec::new();
/// io::write_trace(&mut buf, &trace)?;
/// let back = io::read_trace(buf.as_slice())?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    write_varint(&mut w, trace.len() as u64)?;
    for rec in trace.iter() {
        let flags = (rec.taken as u8) | (kind_code(rec.kind) << 1);
        w.write_all(&[flags])?;
        write_varint(&mut w, rec.pc)?;
        write_varint(&mut w, zigzag(rec.target.wrapping_sub(rec.pc) as i64))?;
    }
    Ok(())
}

/// Deserializes a trace from a reader.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] when the stream is not a trace, and
/// [`TraceIoError::Corrupt`] / [`TraceIoError::Io`] on malformed or
/// truncated input.
pub fn read_trace<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = TraceReader::new(r)?;
    // Guard preallocation against hostile counts; grow as records decode.
    let mut records = Vec::with_capacity(reader.remaining().min(1 << 20) as usize);
    for rec in reader {
        records.push(rec?);
    }
    Ok(Trace::from_records(records))
}

/// Streaming trace decoder: yields records one at a time without
/// materializing the whole trace, so arbitrarily large trace files can be
/// folded into statistics or fed to a predictor incrementally.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use bp_trace::{io, BranchRecord, Trace};
///
/// let trace = Trace::from_records(vec![BranchRecord::conditional(8, true)]);
/// let mut buf = Vec::new();
/// io::write_trace(&mut buf, &trace)?;
///
/// let mut taken = 0u64;
/// for rec in io::TraceReader::new(buf.as_slice())? {
///     if rec?.taken {
///         taken += 1;
///     }
/// }
/// assert_eq!(taken, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream, validating the magic and reading the record count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::BadMagic`] when the stream is not a trace,
    /// or an I/O / corruption error from the header.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let remaining = read_varint(&mut reader)?;
        Ok(TraceReader {
            reader,
            remaining,
            failed: false,
        })
    }

    /// Records left to decode (exact, from the header).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_record(&mut self) -> Result<BranchRecord, TraceIoError> {
        let mut flags = [0u8; 1];
        self.reader.read_exact(&mut flags)?;
        let taken = flags[0] & 1 != 0;
        let kind = kind_from_code(flags[0] >> 1)?;
        let pc = read_varint(&mut self.reader)?;
        let delta = unzigzag(read_varint(&mut self.reader)?);
        Ok(BranchRecord {
            pc,
            target: pc.wrapping_add(delta as u64),
            taken,
            kind,
        })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<BranchRecord, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rec = self.read_record();
        if rec.is_err() {
            // Poison the iterator: after a decode error the stream offset
            // is meaningless.
            self.failed = true;
        }
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            return (0, Some(0));
        }
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (0, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Pc;

    fn roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).expect("write");
        read_trace(buf.as_slice()).expect("read")
    }

    #[test]
    fn empty_roundtrip() {
        let t = Trace::new();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn mixed_roundtrip() {
        let t = Trace::from_records(vec![
            BranchRecord::conditional(0x1000, true),
            BranchRecord::conditional(0x1004, false).with_target(0xfff0),
            BranchRecord {
                pc: 0x2000,
                target: 0x9000,
                taken: true,
                kind: BranchKind::Call,
            },
            BranchRecord {
                pc: 0x9008,
                target: 0,
                taken: true,
                kind: BranchKind::Return,
            },
            BranchRecord {
                pc: Pc::MAX,
                target: 0,
                taken: false,
                kind: BranchKind::Jump,
            },
        ]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = Trace::from_records(vec![BranchRecord::conditional(10, true)]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_varint(&mut buf, 1).unwrap();
        buf.push(4 << 1); // kind code 4 does not exist
        write_varint(&mut buf, 1).unwrap();
        write_varint(&mut buf, 0).unwrap();
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt(_)));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn streaming_reader_matches_bulk_read() {
        let t = Trace::from_records(
            (0..50)
                .map(|i| BranchRecord::conditional(i * 8, i % 3 == 0))
                .collect(),
        );
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 50);
        let streamed: Result<Vec<_>, _> = reader.collect();
        assert_eq!(streamed.unwrap(), t.records());
    }

    #[test]
    fn streaming_reader_poisons_after_error() {
        let t = Trace::from_records(vec![
            BranchRecord::conditional(10, true),
            BranchRecord::conditional(20, false),
        ]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 1); // clip inside the second record
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iterator must stop after an error");
        assert_eq!(reader.size_hint(), (0, Some(0)));
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_varint(&buf[..]).unwrap_err(),
            TraceIoError::Corrupt(_)
        ));
    }
}

//! Binary trace serialization.
//!
//! Traces persist in a compact varint format so generated workloads can be
//! cached on disk and re-analyzed without regeneration. Two framings share
//! one record encoding:
//!
//! ```text
//! per record (both formats):
//!   flags byte   bit0 = taken, bits1-2 = kind
//!   varint pc
//!   varint zigzag(target - pc)
//! ```
//!
//! **BPT1** (whole-trace): magic `"BPT1"`, varint record-count, then the
//! records. The count comes first, so a writer must know the full length
//! up front — fine for materialized traces, unusable for streaming.
//!
//! **BPT2** (chunk-framed, streamable): magic `"BPT2"`, then repeated
//! frames of `varint chunk-count (> 0)` + that many records, a zero
//! varint end marker, and a trailing `varint total-record-count` footer
//! that must equal the sum of the frame counts. A producer can emit
//! frames as chunks arrive ([`ChunkWriter`] is a
//! [`crate::TraceSink`]), and a reader never needs more than one frame
//! in memory ([`ChunkReader`], [`FileTraceSource`]).
//!
//! Readers and writers are generic over [`std::io::Read`] / [`std::io::Write`]
//! (a `&mut` reference works wherever an owned reader/writer does).

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::record::{BranchKind, BranchRecord};
use crate::sink::{TraceSink, CHUNK_RECORDS};
use crate::source::TraceSource;
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"BPT1";
const MAGIC2: &[u8; 4] = b"BPT2";

/// Error produced when decoding a serialized trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// A varint ran past 10 bytes or the stream ended inside a record.
    Corrupt(&'static str),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => write!(f, "stream is not a serialized trace"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace stream: {what}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn write_varint<W: Write>(mut w: W, mut v: u64) -> Result<(), TraceIoError> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(mut r: R) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(TraceIoError::Corrupt("varint too long"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Call => 1,
        BranchKind::Return => 2,
        BranchKind::Jump => 3,
    }
}

fn kind_from_code(code: u8) -> Result<BranchKind, TraceIoError> {
    match code {
        0 => Ok(BranchKind::Conditional),
        1 => Ok(BranchKind::Call),
        2 => Ok(BranchKind::Return),
        3 => Ok(BranchKind::Jump),
        _ => Err(TraceIoError::Corrupt("bad branch kind")),
    }
}

/// Serializes a trace to a writer.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the writer fails.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use bp_trace::{io, BranchRecord, Trace};
///
/// let trace = Trace::from_records(vec![BranchRecord::conditional(64, true)]);
/// let mut buf = Vec::new();
/// io::write_trace(&mut buf, &trace)?;
/// let back = io::read_trace(buf.as_slice())?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    write_varint(&mut w, trace.len() as u64)?;
    for rec in trace.iter() {
        write_record(&mut w, rec)?;
    }
    Ok(())
}

/// Encodes one record (shared by both framings).
fn write_record<W: Write>(mut w: W, rec: &BranchRecord) -> Result<(), TraceIoError> {
    let flags = (rec.taken as u8) | (kind_code(rec.kind) << 1);
    w.write_all(&[flags])?;
    write_varint(&mut w, rec.pc)?;
    write_varint(&mut w, zigzag(rec.target.wrapping_sub(rec.pc) as i64))?;
    Ok(())
}

/// Decodes one record (shared by both framings).
fn read_record<R: Read>(mut r: R) -> Result<BranchRecord, TraceIoError> {
    let mut flags = [0u8; 1];
    r.read_exact(&mut flags)?;
    let taken = flags[0] & 1 != 0;
    let kind = kind_from_code(flags[0] >> 1)?;
    let pc = read_varint(&mut r)?;
    let delta = unzigzag(read_varint(&mut r)?);
    Ok(BranchRecord {
        pc,
        target: pc.wrapping_add(delta as u64),
        taken,
        kind,
    })
}

/// Deserializes a trace from a reader.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] when the stream is not a trace, and
/// [`TraceIoError::Corrupt`] / [`TraceIoError::Io`] on malformed or
/// truncated input.
pub fn read_trace<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = TraceReader::new(r)?;
    // Guard preallocation against hostile counts; grow as records decode.
    let mut records = Vec::with_capacity(reader.remaining().min(1 << 20) as usize);
    for rec in reader {
        records.push(rec?);
    }
    Ok(Trace::from_records(records))
}

/// Streaming trace decoder: yields records one at a time without
/// materializing the whole trace, so arbitrarily large trace files can be
/// folded into statistics or fed to a predictor incrementally.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use bp_trace::{io, BranchRecord, Trace};
///
/// let trace = Trace::from_records(vec![BranchRecord::conditional(8, true)]);
/// let mut buf = Vec::new();
/// io::write_trace(&mut buf, &trace)?;
///
/// let mut taken = 0u64;
/// for rec in io::TraceReader::new(buf.as_slice())? {
///     if rec?.taken {
///         taken += 1;
///     }
/// }
/// assert_eq!(taken, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    remaining: u64,
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream, validating the magic and reading the record count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::BadMagic`] when the stream is not a trace,
    /// or an I/O / corruption error from the header.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let remaining = read_varint(&mut reader)?;
        Ok(TraceReader {
            reader,
            remaining,
            failed: false,
        })
    }

    /// Records left to decode (exact, from the header).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_record(&mut self) -> Result<BranchRecord, TraceIoError> {
        read_record(&mut self.reader)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<BranchRecord, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rec = self.read_record();
        if rec.is_err() {
            // Poison the iterator: after a decode error the stream offset
            // is meaningless.
            self.failed = true;
        }
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            return (0, Some(0));
        }
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (0, Some(n))
    }
}

/// Streaming chunk-framed (`BPT2`) trace writer — a [`TraceSink`], so a
/// workload can generate straight to disk without the trace ever existing
/// in memory.
///
/// Each sink chunk becomes one frame. I/O errors are latched at the first
/// failure (recording calls stay infallible) and surfaced by
/// [`ChunkWriter::finish`], which also writes the end marker and the
/// total-count footer. Dropping a writer without `finish` leaves a file
/// with no end marker, which readers reject — a crashed run cannot pass
/// for a complete trace.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use bp_trace::io::{ChunkReader, ChunkWriter};
/// use bp_trace::{BranchRecord, TraceSink};
///
/// let mut buf = Vec::new();
/// let mut w = ChunkWriter::new(&mut buf)?;
/// w.chunk(&[BranchRecord::conditional(64, true)]);
/// w.chunk(&[BranchRecord::conditional(68, false)]);
/// assert_eq!(w.finish()?, 2);
///
/// let mut r = ChunkReader::new(buf.as_slice())?;
/// let mut records = Vec::new();
/// while r.next_chunk(&mut records)? {
///     assert!(!records.is_empty());
/// }
/// assert_eq!(r.decoded(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ChunkWriter<W: Write> {
    writer: W,
    written: u64,
    err: Option<TraceIoError>,
}

impl<W: Write> ChunkWriter<W> {
    /// Starts a `BPT2` stream on `writer` (writes the magic immediately).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] when the writer fails.
    pub fn new(mut writer: W) -> Result<Self, TraceIoError> {
        writer.write_all(MAGIC2)?;
        Ok(ChunkWriter {
            writer,
            written: 0,
            err: None,
        })
    }

    /// Records written so far (successfully framed).
    pub fn written(&self) -> u64 {
        self.written
    }

    fn write_frame(&mut self, records: &[BranchRecord]) -> Result<(), TraceIoError> {
        write_varint(&mut self.writer, records.len() as u64)?;
        for rec in records {
            write_record(&mut self.writer, rec)?;
        }
        self.written += records.len() as u64;
        Ok(())
    }

    /// Writes the end marker and footer, flushes, and returns the total
    /// record count.
    ///
    /// # Errors
    ///
    /// Surfaces the first error latched during chunk writes, or a failure
    /// while finalizing.
    pub fn finish(mut self) -> Result<u64, TraceIoError> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        write_varint(&mut self.writer, 0)?;
        write_varint(&mut self.writer, self.written)?;
        self.writer.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> TraceSink for ChunkWriter<W> {
    fn chunk(&mut self, records: &[BranchRecord]) {
        if self.err.is_some() || records.is_empty() {
            return;
        }
        if let Err(e) = self.write_frame(records) {
            self.err = Some(e);
        }
    }
}

/// Streaming chunk-framed (`BPT2`) trace decoder.
///
/// Decodes one frame at a time into a caller-supplied buffer, so peak
/// memory is one chunk regardless of trace length. Hostile frame counts
/// cannot force large allocations (reservation is capped at
/// [`CHUNK_RECORDS`]); any decode error poisons the reader — subsequent
/// calls return the stream-offset-is-meaningless state as `Ok(false)` is
/// never fabricated after an error.
#[derive(Debug)]
pub struct ChunkReader<R> {
    reader: R,
    decoded: u64,
    finished: bool,
    failed: bool,
}

impl<R: Read> ChunkReader<R> {
    /// Opens a `BPT2` stream, validating the magic.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::BadMagic`] when the stream is not a
    /// chunk-framed trace, or an I/O error from the header read.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC2 {
            return Err(TraceIoError::BadMagic);
        }
        Ok(ChunkReader {
            reader,
            decoded: 0,
            finished: false,
            failed: false,
        })
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Decodes the next frame into `records` (cleared first). Returns
    /// `Ok(false)` — exactly once — after the end marker and a footer that
    /// matches the decoded count.
    ///
    /// # Errors
    ///
    /// Returns a typed error on I/O failure, corruption, or a footer
    /// mismatch; the reader is poisoned afterwards and every later call
    /// repeats an error.
    pub fn next_chunk(&mut self, records: &mut Vec<BranchRecord>) -> Result<bool, TraceIoError> {
        records.clear();
        if self.failed {
            return Err(TraceIoError::Corrupt("reader poisoned by earlier error"));
        }
        if self.finished {
            return Ok(false);
        }
        match self.read_frame(records) {
            Ok(more) => Ok(more),
            Err(e) => {
                self.failed = true;
                records.clear();
                Err(e)
            }
        }
    }

    fn read_frame(&mut self, records: &mut Vec<BranchRecord>) -> Result<bool, TraceIoError> {
        let count = read_varint(&mut self.reader)?;
        if count == 0 {
            let footer = read_varint(&mut self.reader)?;
            if footer != self.decoded {
                return Err(TraceIoError::Corrupt("footer record count mismatch"));
            }
            self.finished = true;
            return Ok(false);
        }
        // Guard preallocation against hostile frame counts; a lying count
        // simply runs into a truncation error while decoding.
        records.reserve(count.min(CHUNK_RECORDS as u64) as usize);
        for _ in 0..count {
            records.push(read_record(&mut self.reader)?);
        }
        self.decoded += count;
        Ok(true)
    }
}

/// Reads a whole `BPT2` stream into a [`Trace`].
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] when the stream is not chunk-framed,
/// and [`TraceIoError::Corrupt`] / [`TraceIoError::Io`] on malformed or
/// truncated input (including a missing end marker or a lying footer).
pub fn read_chunked_trace<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let mut reader = ChunkReader::new(r)?;
    let mut all = Vec::new();
    let mut chunk = Vec::new();
    while reader.next_chunk(&mut chunk)? {
        all.extend_from_slice(&chunk);
    }
    Ok(Trace::from_records(all))
}

/// How many file bytes a windowed read pulls in at a time (64 KiB — a
/// handful of chunks' worth of compressed records).
const WINDOW_BYTES: usize = 64 << 10;

/// On Unix, an offset-stated windowed reader over a shared file handle:
/// every refill is one positional `read_at` (pread), so concurrent scans
/// of the same [`FileTraceSource`] never fight over a seek cursor and the
/// resident window stays at [`WINDOW_BYTES`] regardless of file size.
#[cfg(unix)]
struct WindowedReader<'a> {
    file: &'a File,
    pos: u64,
    window: Vec<u8>,
    start: usize,
}

#[cfg(unix)]
impl<'a> WindowedReader<'a> {
    fn new(file: &'a File) -> Self {
        WindowedReader {
            file,
            pos: 0,
            window: Vec::new(),
            start: 0,
        }
    }
}

#[cfg(unix)]
impl Read for WindowedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        use std::os::unix::fs::FileExt;
        if self.start == self.window.len() {
            self.window.resize(WINDOW_BYTES, 0);
            let n = self.file.read_at(&mut self.window, self.pos)?;
            self.window.truncate(n);
            self.start = 0;
            self.pos += n as u64;
            if n == 0 {
                return Ok(0);
            }
        }
        let n = buf.len().min(self.window.len() - self.start);
        buf[..n].copy_from_slice(&self.window[self.start..self.start + n]);
        self.start += n;
        Ok(n)
    }
}

/// A `BPT2` trace file as a replayable [`TraceSource`].
///
/// Opening validates the magic and the end-of-file structure (end marker
/// followed by the footer varint), so a truncated or unfinished file is
/// rejected up front; the footer provides an exact [`TraceSource::len_hint`]
/// without scanning. Each [`TraceSource::scan`] streams the file through a
/// bounded window (positional reads on Unix — scans are independent and
/// thread-safe; a fresh handle elsewhere), decoding one frame at a time:
/// peak memory per scan is one record chunk plus one I/O window, for any
/// file size.
#[derive(Debug)]
pub struct FileTraceSource {
    path: PathBuf,
    file: File,
    len: u64,
}

impl FileTraceSource {
    /// Opens and validates a chunk-framed trace file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::BadMagic`] for a non-`BPT2` file and
    /// [`TraceIoError::Corrupt`] / [`TraceIoError::Io`] when the tail
    /// structure (end marker + footer) is missing or malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let meta = file.metadata()?;
        let size = meta.len();
        let mut head = [0u8; 4];
        read_exact_at(&file, &mut head, 0)?;
        if &head != MAGIC2 {
            return Err(TraceIoError::BadMagic);
        }
        // The file ends with `varint 0` (end marker) then `varint total`.
        // A varint is at most 10 bytes and its final byte has the high bit
        // clear, so the footer is recoverable from the last 11 bytes:
        // scan back over continuation bytes to find its start, and the
        // byte before that start must be the 0x00 end marker.
        let tail_len = (size.saturating_sub(4)).min(11) as usize;
        if tail_len < 2 {
            return Err(TraceIoError::Corrupt("missing end marker and footer"));
        }
        let mut tail = vec![0u8; tail_len];
        read_exact_at(&file, &mut tail, size - tail_len as u64)?;
        let last = tail[tail_len - 1];
        if last & 0x80 != 0 {
            return Err(TraceIoError::Corrupt("footer varint unterminated"));
        }
        let mut start = tail_len - 1;
        while start > 0 && tail[start - 1] & 0x80 != 0 {
            start -= 1;
        }
        if start == 0 || tail[start - 1] != 0 {
            return Err(TraceIoError::Corrupt("missing end marker before footer"));
        }
        let len = read_varint(&tail[start..])?;
        Ok(FileTraceSource { path, file, len })
    }

    /// The file this source reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total records in the file (from the validated footer).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn scan_reader<R: Read>(
        &self,
        reader: R,
        visit: &mut dyn FnMut(&[BranchRecord]),
    ) -> Result<(), TraceIoError> {
        let mut frames = ChunkReader::new(reader)?;
        let mut chunk = Vec::new();
        while frames.next_chunk(&mut chunk)? {
            visit(&chunk);
        }
        Ok(())
    }
}

impl TraceSource for FileTraceSource {
    fn scan(&self, visit: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError> {
        #[cfg(unix)]
        {
            self.scan_reader(WindowedReader::new(&self.file), visit)
        }
        #[cfg(not(unix))]
        {
            let file = File::open(&self.path)?;
            self.scan_reader(std::io::BufReader::with_capacity(WINDOW_BYTES, file), visit)
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len)
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> Result<(), TraceIoError> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset).map_err(TraceIoError::Io)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> Result<(), TraceIoError> {
    use std::io::{Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf).map_err(TraceIoError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Pc;

    fn roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).expect("write");
        read_trace(buf.as_slice()).expect("read")
    }

    #[test]
    fn empty_roundtrip() {
        let t = Trace::new();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn mixed_roundtrip() {
        let t = Trace::from_records(vec![
            BranchRecord::conditional(0x1000, true),
            BranchRecord::conditional(0x1004, false).with_target(0xfff0),
            BranchRecord {
                pc: 0x2000,
                target: 0x9000,
                taken: true,
                kind: BranchKind::Call,
            },
            BranchRecord {
                pc: 0x9008,
                target: 0,
                taken: true,
                kind: BranchKind::Return,
            },
            BranchRecord {
                pc: Pc::MAX,
                target: 0,
                taken: false,
                kind: BranchKind::Jump,
            },
        ]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = Trace::from_records(vec![BranchRecord::conditional(10, true)]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_varint(&mut buf, 1).unwrap();
        buf.push(4 << 1); // kind code 4 does not exist
        write_varint(&mut buf, 1).unwrap();
        write_varint(&mut buf, 0).unwrap();
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt(_)));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn streaming_reader_matches_bulk_read() {
        let t = Trace::from_records(
            (0..50)
                .map(|i| BranchRecord::conditional(i * 8, i % 3 == 0))
                .collect(),
        );
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 50);
        let streamed: Result<Vec<_>, _> = reader.collect();
        assert_eq!(streamed.unwrap(), t.records());
    }

    #[test]
    fn streaming_reader_poisons_after_error() {
        let t = Trace::from_records(vec![
            BranchRecord::conditional(10, true),
            BranchRecord::conditional(20, false),
        ]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 1); // clip inside the second record
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iterator must stop after an error");
        assert_eq!(reader.size_hint(), (0, Some(0)));
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_varint(&buf[..]).unwrap_err(),
            TraceIoError::Corrupt(_)
        ));
    }
}

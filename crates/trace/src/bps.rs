//! The versioned `.bps` packed-artifact store.
//!
//! A `.bps` file holds a bit-plane artifact — [`BranchStreams`] here, the
//! oracle's `OutcomeMatrix` in `bp-core` — as one flat array of
//! little-endian u64 words, so that re-opening it is a length check, a
//! header walk, and an `mmap(2)`: a 1B-branch artifact is built once and
//! every later sweep or re-classification starts from the mapped planes
//! instead of a twenty-minute regeneration.
//!
//! Layout common to every kind (all quantities are words unless noted):
//!
//! ```text
//! word 0   magic "BPS1" + kind byte (1 = streams, 2 = matrix) + 3 zero bytes
//! word 1   total file length in BYTES (must equal the real file length)
//! word 2+  kind-specific header, index, then the concatenated planes
//! ```
//!
//! The streams kind (this module) continues:
//!
//! ```text
//! word 2   static branch count B
//! word 3   total dynamic conditional executions
//! 3 words per branch, sorted by pc:  [pc, stream length in bits, word offset]
//! then each branch's packed outcome plane (len.div_ceil(64) words)
//! ```
//!
//! Trust is layered the same way as the `.bpt2` trace cache: an FNV-1a
//! [`Sidecar`] next to the file pins the *configuration* (what question the
//! artifact answers) and the *content* (a fingerprint of the header+index
//! words — the planes' cheap stand-in, like the record count in `.bpt2`
//! sidecars); the file then self-describes its length and every plane
//! offset, all of which is validated **before** any plane is sliced or the
//! file is handed to `mmap`. Every failure mode is a typed [`BpsError`] —
//! a rotten artifact is a *rebuild* signal, never a panic.

use std::fs::File;
use std::io::{Read, Write};
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

use crate::fx::FxHashMap;
use crate::mmap::MappedBytes;
use crate::record::Pc;
use crate::sidecar::{fnv1a, Sidecar, SidecarError, CONTENT_OFFSET};
use crate::streams::{BranchStreams, OutcomeStream};

/// Magic bytes opening every `.bps` file.
pub const BPS_MAGIC: [u8; 4] = *b"BPS1";
/// Kind byte of a [`BranchStreams`] artifact.
pub const STREAMS_KIND: u8 = 1;
/// Kind byte of an `OutcomeMatrix` artifact (codec in `bp-core`).
pub const MATRIX_KIND: u8 = 2;

/// Word 0 of a `.bps` file of the given kind.
#[must_use]
pub fn header_word(kind: u8) -> u64 {
    u64::from_le_bytes([
        BPS_MAGIC[0],
        BPS_MAGIC[1],
        BPS_MAGIC[2],
        BPS_MAGIC[3],
        kind,
        0,
        0,
        0,
    ])
}

/// FNV-1a over the little-endian bytes of `words`, folded into `init` —
/// the content fingerprint primitive shared by both `.bps` codecs.
#[must_use]
pub fn fnv_words(init: u64, words: &[u64]) -> u64 {
    let mut hash = init;
    for w in words {
        hash = fnv1a(hash, &w.to_le_bytes());
    }
    hash
}

/// Why a `.bps` artifact could not be used. Every variant means "rebuild
/// the artifact"; none is ever worth a panic.
#[derive(Debug)]
pub enum BpsError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The fingerprint sidecar is missing, malformed, or future-versioned.
    Sidecar(SidecarError),
    /// The file does not open with the `.bps` magic (wrong file, or a
    /// future format revision).
    BadMagic,
    /// Valid magic, but the kind byte is not the kind the caller asked
    /// for (e.g. a streams artifact where a matrix was expected).
    WrongKind,
    /// The file ends before the structure it declares.
    Truncated(&'static str),
    /// The structure is internally inconsistent.
    Corrupt(&'static str),
    /// The sidecar's config fingerprint answers a different question
    /// (other seed, target, window, …).
    ConfigMismatch,
    /// The sidecar's content fingerprint does not match the file.
    ContentMismatch,
}

impl std::fmt::Display for BpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpsError::Io(e) => write!(f, "artifact unreadable: {e}"),
            BpsError::Sidecar(e) => write!(f, "{e}"),
            BpsError::BadMagic => write!(f, "not a .bps artifact"),
            BpsError::WrongKind => write!(f, "artifact kind mismatch"),
            BpsError::Truncated(what) => write!(f, "truncated artifact: {what}"),
            BpsError::Corrupt(what) => write!(f, "corrupt artifact: {what}"),
            BpsError::ConfigMismatch => write!(f, "config fingerprint mismatch"),
            BpsError::ContentMismatch => write!(f, "content fingerprint mismatch"),
        }
    }
}

impl std::error::Error for BpsError {}

impl From<std::io::Error> for BpsError {
    fn from(e: std::io::Error) -> Self {
        BpsError::Io(e)
    }
}

impl From<SidecarError> for BpsError {
    fn from(e: SidecarError) -> Self {
        BpsError::Sidecar(e)
    }
}

/// The backing bytes of an opened `.bps` file: the kernel's mapping where
/// available, an owned little-endian decode elsewhere. Cloning shares the
/// backing (it is an `Arc` internally), which is what lets every plane of
/// an artifact be a cheap [`Words`] view into one open file.
#[derive(Debug, Clone)]
pub struct BpsBytes {
    backing: Arc<Backing>,
}

#[derive(Debug)]
enum Backing {
    Mapped(MappedBytes),
    Owned(Vec<u64>),
}

impl BpsBytes {
    /// Opens a `.bps` file of the given kind and validates the common
    /// header: file length (non-empty, whole words, fits in memory —
    /// checked **before** the file is mapped or sliced), magic, kind
    /// byte, and the declared-vs-real length. Kind-specific structure is
    /// the caller's job.
    ///
    /// # Errors
    ///
    /// [`BpsError::Io`] / [`BpsError::Truncated`] / [`BpsError::BadMagic`]
    /// / [`BpsError::WrongKind`] / [`BpsError::Corrupt`] as described.
    pub fn open(path: &Path, kind: u8) -> Result<BpsBytes, BpsError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < 16 {
            return Err(BpsError::Truncated("shorter than the artifact header"));
        }
        if !len.is_multiple_of(8) {
            return Err(BpsError::Truncated("length is not a whole number of words"));
        }
        let byte_len =
            usize::try_from(len).map_err(|_| BpsError::Corrupt("artifact larger than memory"))?;
        let backing = match MappedBytes::map(&file, len) {
            Some(mapped) => Backing::Mapped(mapped),
            None => {
                // Portable fallback: one buffered read, explicit
                // little-endian decode (correct on any endianness).
                let mut bytes = Vec::with_capacity(byte_len);
                file.read_to_end(&mut bytes)?;
                if bytes.len() != byte_len {
                    return Err(BpsError::Truncated("file changed while reading"));
                }
                let words = bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect();
                Backing::Owned(words)
            }
        };
        let this = BpsBytes {
            backing: Arc::new(backing),
        };
        let words = this.words();
        let head = words[0].to_le_bytes();
        if head[0..4] != BPS_MAGIC || head[5..8] != [0, 0, 0] {
            return Err(BpsError::BadMagic);
        }
        if head[4] != kind {
            return Err(BpsError::WrongKind);
        }
        if words[1] != len {
            return Err(BpsError::Corrupt("declared length does not match the file"));
        }
        Ok(this)
    }

    /// The whole file as words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        match &*self.backing {
            Backing::Mapped(m) => m.words(),
            Backing::Owned(v) => v,
        }
    }

    /// Whether the backing is a kernel mapping (vs an owned decode).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(&*self.backing, Backing::Mapped(_))
    }
}

/// A bit plane that is either owned or a view into an opened `.bps`
/// file — the borrow-agnostic word storage behind [`OutcomeStream`] and
/// `bp-core`'s `BranchMatrix`. Kernels only ever see `&[u64]` (via
/// `Deref`), so the same AVX2/BMI2 paths run over freshly built and
/// mapped planes alike; the rare mutation of a mapped plane promotes it
/// to an owned copy first ([`Words::vec_mut`]).
#[derive(Clone)]
pub struct Words(Repr);

#[derive(Clone)]
enum Repr {
    Owned(Vec<u64>),
    Mapped {
        file: BpsBytes,
        offset: usize,
        len: usize,
    },
}

impl Words {
    /// An owned plane.
    #[must_use]
    pub fn owned(words: Vec<u64>) -> Words {
        Words(Repr::Owned(words))
    }

    /// A zero-copy view of `len` words at word `offset` of an opened
    /// artifact.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds — callers validate plane
    /// extents against the file length before constructing views, so a
    /// panic here is a codec bug, not a corrupt file.
    #[must_use]
    pub fn mapped(file: BpsBytes, offset: usize, len: usize) -> Words {
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= file.words().len()),
            "plane view out of bounds"
        );
        Words(Repr::Mapped { file, offset, len })
    }

    /// The plane as a word slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { file, offset, len } => &file.words()[*offset..*offset + *len],
        }
    }

    /// Mutable access as a `Vec`, promoting a mapped view to an owned
    /// copy first. Build paths only ever construct owned planes, so the
    /// copy never happens there; it exists so that a mapped artifact is
    /// still a fully general value.
    pub fn vec_mut(&mut self) -> &mut Vec<u64> {
        if let Repr::Mapped { .. } = self.0 {
            self.0 = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { .. } => unreachable!("promoted above"),
        }
    }

    /// Whether this plane is a view into a mapped file.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Repr::Mapped { .. })
    }
}

impl Deref for Words {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl Default for Words {
    fn default() -> Words {
        Words(Repr::Owned(Vec::new()))
    }
}

impl From<Vec<u64>> for Words {
    fn from(words: Vec<u64>) -> Words {
        Words::owned(words)
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Words) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Words {}

impl std::fmt::Debug for Words {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// A [`BranchStreams`] re-opened from a `.bps` artifact.
#[derive(Debug)]
pub struct OpenedStreams {
    /// The artifact, its planes viewing the opened file.
    pub streams: BranchStreams,
    /// Whether the planes are kernel-mapped (vs decoded into memory).
    pub mapped: bool,
}

/// Writes `streams` as a `.bps` artifact at `path` (tmp + rename, then
/// the fingerprint sidecar), so a crash never leaves a half-written file
/// under the real name.
///
/// # Errors
///
/// Filesystem errors from the write or rename.
pub fn write_streams(path: &Path, streams: &BranchStreams, config: u64) -> std::io::Result<()> {
    let mut branches: Vec<(Pc, &OutcomeStream)> = streams.iter().collect();
    branches.sort_unstable_by_key(|&(pc, _)| pc);

    let index_base = 4u64 + 3 * branches.len() as u64;
    let mut meta: Vec<u64> = Vec::with_capacity(index_base as usize);
    meta.extend([
        header_word(STREAMS_KIND),
        0,
        branches.len() as u64,
        streams.dynamic_count(),
    ]);
    let mut off = index_base;
    for &(pc, s) in &branches {
        meta.extend([pc, s.len() as u64, off]);
        off += s.words().len() as u64;
    }
    meta[1] = off * 8; // total file length in bytes

    let tmp = path.with_extension("bps.tmp");
    let mut out = std::io::BufWriter::new(File::create(&tmp)?);
    for w in &meta {
        out.write_all(&w.to_le_bytes())?;
    }
    for &(_, s) in &branches {
        for w in s.words() {
            out.write_all(&w.to_le_bytes())?;
        }
    }
    out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    std::fs::rename(&tmp, path)?;

    let content = fnv_words(CONTENT_OFFSET, &meta);
    Sidecar { config, content }.write(path)
}

/// Re-opens a streams artifact written by [`write_streams`], validating
/// sidecar fingerprints and the whole index (sorted pcs, every plane
/// offset and length, tail-padding bits, the dynamic total) before any
/// plane view is constructed.
///
/// # Errors
///
/// Every rot mode is a distinct [`BpsError`]; see the module docs.
pub fn open_streams(path: &Path, config: u64) -> Result<OpenedStreams, BpsError> {
    let sidecar = Sidecar::load(path)?;
    if sidecar.config != config {
        return Err(BpsError::ConfigMismatch);
    }
    let bytes = BpsBytes::open(path, STREAMS_KIND)?;
    let words = bytes.words();
    let total_words = words.len() as u64;
    if total_words < 4 {
        return Err(BpsError::Truncated("missing streams header"));
    }
    let branch_count = words[2];
    let total_dynamic = words[3];
    let index_end = branch_count
        .checked_mul(3)
        .and_then(|iw| iw.checked_add(4))
        .ok_or(BpsError::Corrupt("branch count overflows the index"))?;
    if index_end > total_words {
        return Err(BpsError::Truncated("index past end of file"));
    }
    let meta_end = index_end as usize;

    let mut expected_off = index_end;
    let mut dynamic_sum = 0u64;
    let mut prev_pc: Option<Pc> = None;
    for i in 0..branch_count as usize {
        let pc = words[4 + 3 * i];
        let len = words[4 + 3 * i + 1];
        let off = words[4 + 3 * i + 2];
        if prev_pc.is_some_and(|p| p >= pc) {
            return Err(BpsError::Corrupt("index not sorted by pc"));
        }
        prev_pc = Some(pc);
        if off != expected_off {
            return Err(BpsError::Corrupt("plane offset does not match index"));
        }
        let plane_words = len.div_ceil(64);
        expected_off = expected_off
            .checked_add(plane_words)
            .ok_or(BpsError::Corrupt("plane length overflows the file"))?;
        if expected_off > total_words {
            return Err(BpsError::Truncated("plane past end of file"));
        }
        dynamic_sum = dynamic_sum
            .checked_add(len)
            .ok_or(BpsError::Corrupt("dynamic count overflows"))?;
        // Bits past the declared length must be zero, as the builders
        // guarantee — a lying length would silently corrupt popcounts.
        let tail_bits = len % 64;
        if tail_bits != 0 {
            let last = words[(off + plane_words - 1) as usize];
            if last & !((1u64 << tail_bits) - 1) != 0 {
                return Err(BpsError::Corrupt("padding bits set past stream length"));
            }
        }
    }
    if expected_off != total_words {
        return Err(BpsError::Corrupt("file length does not match the planes"));
    }
    if dynamic_sum != total_dynamic {
        return Err(BpsError::Corrupt(
            "dynamic total does not match the streams",
        ));
    }
    if fnv_words(CONTENT_OFFSET, &words[..meta_end]) != sidecar.content {
        return Err(BpsError::ContentMismatch);
    }

    let mapped = bytes.is_mapped();
    let mut map: FxHashMap<Pc, OutcomeStream> =
        FxHashMap::with_capacity_and_hasher(branch_count as usize, Default::default());
    for i in 0..branch_count as usize {
        let pc = words[4 + 3 * i];
        let len = words[4 + 3 * i + 1] as usize;
        let off = words[4 + 3 * i + 2] as usize;
        let plane = Words::mapped(bytes.clone(), off, len.div_ceil(64));
        map.insert(pc, OutcomeStream::from_words(plane, len));
    }
    Ok(OpenedStreams {
        streams: BranchStreams::from_parts(map, total_dynamic),
        mapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;
    use crate::trace::Trace;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bp-bps-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_streams() -> BranchStreams {
        let recs: Vec<BranchRecord> = (0..3000u64)
            .map(|i| BranchRecord::conditional(0x10 + (i % 7) * 8, i % 3 != 0))
            .collect();
        BranchStreams::of(&Trace::from_records(recs))
    }

    #[test]
    fn words_owned_and_cow_promotion() {
        let mut w = Words::owned(vec![1, 2, 3]);
        assert_eq!(&w[..], &[1, 2, 3]);
        assert!(!w.is_mapped());
        w.vec_mut().push(4);
        assert_eq!(&w[..], &[1, 2, 3, 4]);
        assert_eq!(w, Words::owned(vec![1, 2, 3, 4]));
    }

    #[test]
    fn streams_round_trip_through_bps() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("m.streams.bps");
        let built = sample_streams();
        write_streams(&path, &built, 0xfeed).expect("write");
        let opened = open_streams(&path, 0xfeed).expect("open");
        assert_eq!(opened.streams, built);
        assert_eq!(opened.mapped, crate::mmap::mmap_supported());
        assert_eq!(opened.streams.profile(), built.profile());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_is_typed() {
        let dir = temp_dir("config");
        let path = dir.join("m.streams.bps");
        write_streams(&path, &sample_streams(), 1).expect("write");
        assert!(matches!(
            open_streams(&path, 2),
            Err(BpsError::ConfigMismatch)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_streams_round_trip() {
        let dir = temp_dir("empty");
        let path = dir.join("empty.streams.bps");
        let built = BranchStreams::of(&Trace::new());
        write_streams(&path, &built, 7).expect("write");
        let opened = open_streams(&path, 7).expect("open");
        assert_eq!(opened.streams, built);
        std::fs::remove_dir_all(&dir).ok();
    }
}

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// Aggregate statistics of a trace — the numbers behind the paper's Table 1.
///
/// # Example
///
/// ```
/// use bp_trace::{BranchRecord, Trace, TraceStats};
///
/// let trace: Trace = (0..10)
///     .map(|i| BranchRecord::conditional(0x40, i % 2 == 0))
///     .collect();
/// let stats = TraceStats::of(&trace);
/// assert_eq!(stats.dynamic_conditional, 10);
/// assert_eq!(stats.taken, 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Dynamic conditional branch executions.
    pub dynamic_conditional: u64,
    /// Distinct static conditional branch sites.
    pub static_conditional: u64,
    /// Dynamic conditional branches that were taken.
    pub taken: u64,
    /// Dynamic backward conditional branches (loop back-edges).
    pub backward: u64,
    /// Dynamic records of any non-conditional kind (calls/returns/jumps).
    pub other_transfers: u64,
}

impl TraceStats {
    /// Computes statistics over a trace in one pass.
    pub fn of(trace: &Trace) -> Self {
        let mut stats = TraceStats::default();
        let mut pcs = HashSet::new();
        for rec in trace.iter() {
            if rec.is_conditional() {
                stats.dynamic_conditional += 1;
                pcs.insert(rec.pc);
                if rec.taken {
                    stats.taken += 1;
                }
                if rec.is_backward() {
                    stats.backward += 1;
                }
            } else {
                stats.other_transfers += 1;
            }
        }
        stats.static_conditional = pcs.len() as u64;
        stats
    }

    /// Fraction of dynamic conditional branches that were taken, in
    /// `[0, 1]`; zero for an empty trace.
    pub fn taken_rate(&self) -> f64 {
        if self.dynamic_conditional == 0 {
            0.0
        } else {
            self.taken as f64 / self.dynamic_conditional as f64
        }
    }

    /// Mean dynamic executions per static conditional branch; zero for an
    /// empty trace.
    pub fn executions_per_static(&self) -> f64 {
        if self.static_conditional == 0 {
            0.0
        } else {
            self.dynamic_conditional as f64 / self.static_conditional as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchKind, BranchRecord};

    #[test]
    fn empty_trace() {
        let s = TraceStats::of(&Trace::new());
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.executions_per_static(), 0.0);
    }

    #[test]
    fn counts_all_fields() {
        let t = Trace::from_records(vec![
            BranchRecord::conditional(8, true),
            BranchRecord::conditional(8, false),
            BranchRecord::conditional(16, true).with_target(0),
            BranchRecord {
                pc: 20,
                target: 100,
                taken: true,
                kind: BranchKind::Call,
            },
        ]);
        let s = TraceStats::of(&t);
        assert_eq!(s.dynamic_conditional, 3);
        assert_eq!(s.static_conditional, 2);
        assert_eq!(s.taken, 2);
        assert_eq!(s.backward, 1);
        assert_eq!(s.other_transfers, 1);
        assert!((s.taken_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.executions_per_static() - 1.5).abs() < 1e-12);
    }
}

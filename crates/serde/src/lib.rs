//! Offline vendored stand-in for `serde`.
//!
//! The workspace decorates many types with `#[derive(Serialize,
//! Deserialize)]` for downstream consumers, but nothing in-tree actually
//! serializes through serde (trace persistence uses the hand-rolled
//! binary format in `bp-trace::io`). Since the build container has no
//! network access, this facade re-exports no-op derive macros so the
//! annotations compile without pulling the real crate.
//!
//! If a future PR needs real serialization, replace this crate's path
//! entry in the workspace `Cargo.toml` with the crates.io dependency —
//! the annotation surface is already compatible.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

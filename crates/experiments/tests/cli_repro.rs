//! End-to-end tests of the `repro` experiment driver CLI.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn table1_runs_and_prints_all_benchmarks() {
    let out = repro()
        .args(["--target", "3000", "table1"])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp",
    ] {
        assert!(text.contains(name), "missing {name}: {text}");
    }
    assert!(text.contains("Table 1"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro().arg("table99").output().expect("run repro");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("run repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn cache_flag_persists_traces() {
    let dir = std::env::temp_dir().join(format!("repro-cache-{}", std::process::id()));
    let out = repro()
        .args([
            "--target",
            "2000",
            "--cache",
            dir.to_str().unwrap(),
            "table1",
        ])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("cache dir created")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let traces: Vec<&String> = names.iter().filter(|n| n.ends_with(".bpt")).collect();
    assert_eq!(traces.len(), 8, "one .bpt per benchmark: {names:?}");
    for trace in traces {
        assert!(
            names.iter().any(|n| *n == format!("{trace}.fp")),
            "fingerprint sidecar for {trace}: {names:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_sidecar_triggers_one_notice_and_identical_output() {
    let dir = std::env::temp_dir().join(format!("repro-sidecar-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        let out = repro()
            .args([
                "--target",
                "2000",
                "--cache",
                dir.to_str().unwrap(),
                "table1",
            ])
            .output()
            .expect("run repro");
        assert!(out.status.success(), "{out:?}");
        out
    };
    let first = run();

    // Corrupt exactly one fingerprint sidecar.
    let sidecar = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "fp"))
        .expect("a .fp sidecar in the cache dir");
    std::fs::write(&sidecar, "not a fingerprint\n").unwrap();

    // The corrupted entry is regenerated with a one-line notice naming
    // the sidecar's trace; rendered output is byte-identical.
    let second = run();
    let stderr = String::from_utf8_lossy(&second.stderr);
    let notices: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("notice: regenerating trace cache"))
        .collect();
    let trace_path = sidecar.with_extension("");
    assert_eq!(notices.len(), 1, "stderr: {stderr}");
    assert!(
        notices[0].contains(trace_path.to_str().unwrap())
            && notices[0].contains("malformed fingerprint sidecar"),
        "notice: {}",
        notices[0]
    );
    assert_eq!(first.stdout, second.stdout, "regeneration changed output");

    // The cache healed: a third run is notice-free.
    let third = run();
    assert!(
        !String::from_utf8_lossy(&third.stderr).contains("notice:"),
        "cache not rewritten after regeneration"
    );
    assert_eq!(first.stdout, third.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_write_verify_roundtrip_and_config_mismatch() {
    let path = std::env::temp_dir().join(format!("repro-goldens-{}.fp", std::process::id()));
    let goldens = path.to_str().unwrap();
    let out = repro()
        .args([
            "--target",
            "2000",
            "--seed",
            "5",
            "--goldens",
            goldens,
            "--write-goldens",
            "all",
        ])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote 17 golden fingerprints"));

    let out = repro()
        .args([
            "--target",
            "2000",
            "--seed",
            "5",
            "--goldens",
            goldens,
            "--verify-goldens",
            "all",
        ])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("goldens verified: 17 experiments"));

    // A different seed must be rejected up front as a config mismatch.
    let out = repro()
        .args([
            "--target",
            "2000",
            "--seed",
            "6",
            "--goldens",
            goldens,
            "--verify-goldens",
            "all",
        ])
        .output()
        .expect("run repro");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("goldens were captured at seed=5"),
        "{out:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn seed_flag_changes_results() {
    let run = |seed: &str| {
        let out = repro()
            .args(["--target", "2000", "--seed", seed, "table1"])
            .output()
            .expect("run repro");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_ne!(run("1"), run("2"));
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    // The engine's fan-out must not change stdout in any way: a
    // multi-experiment run (prewarm + shared cache active) at --jobs 4
    // produces the same bytes as --jobs 1.
    let run = |jobs: &str| {
        let out = repro()
            .args(["--target", "3000", "--jobs", jobs, "table2", "fig4", "fig7"])
            .output()
            .expect("run repro");
        assert!(out.status.success(), "{out:?}");
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("4"));
    assert_eq!(serial, run("2"));
}

#[test]
fn timings_report_shared_results_computed_once() {
    let path = std::env::temp_dir().join(format!("repro-timings-{}.json", std::process::id()));
    let out = repro()
        .args([
            "--target",
            "3000",
            "--jobs",
            "2",
            "--timings",
            path.to_str().unwrap(),
            // Three experiments that all want the default-config oracle and
            // the gshare simulations.
            "fig4",
            "table2",
            "fig7",
        ])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&path).expect("timings file written");
    std::fs::remove_file(&path).ok();

    // Structural spot checks on the hand-rolled JSON.
    for key in [
        "\"seed\"",
        "\"jobs\": 2",
        "\"experiments\"",
        "\"prewarm\"",
        "\"fig4\"",
        "\"table2\"",
        "\"fig7\"",
        "\"cache\"",
        "\"hits\"",
        "\"misses\"",
        "\"utilization\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    let count = |key: &str| -> u64 {
        json.split(key)
            .nth(1)
            .and_then(|rest| {
                rest.trim_start_matches(": ")
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or(u64::MAX)
    };
    let hits = count("\"hits\"");
    let misses = count("\"misses\"");
    // Prewarm: 8 benchmarks x 4 standard predictors = 32 misses. Then, per
    // benchmark: one oracle analysis (miss), one profile (miss), and the
    // packed-stream artifact the profile is derived from (miss), reused
    // across the three experiments — everything else must hit.
    assert_eq!(
        misses,
        32 + 8 + 8 + 8,
        "shared artifacts computed more than once"
    );
    // fig4 (oracle+gshare+IF-gshare), table2 (gshare+IF-gshare+oracle),
    // fig7 (gshare+pas+profile): at least a dozen hits on 8 benchmarks.
    assert!(hits >= 5 * 8, "expected heavy cache reuse, got {hits} hits");
}

//! End-to-end tests of the `repro` experiment driver CLI.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn table1_runs_and_prints_all_benchmarks() {
    let out = repro()
        .args(["--target", "3000", "table1"])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp"] {
        assert!(text.contains(name), "missing {name}: {text}");
    }
    assert!(text.contains("Table 1"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro().arg("table99").output().expect("run repro");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("run repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn cache_flag_persists_traces() {
    let dir = std::env::temp_dir().join(format!("repro-cache-{}", std::process::id()));
    let out = repro()
        .args(["--target", "2000", "--cache", dir.to_str().unwrap(), "table1"])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "{out:?}");
    let cached = std::fs::read_dir(&dir).expect("cache dir created").count();
    assert_eq!(cached, 8, "one .bpt per benchmark");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seed_flag_changes_results() {
    let run = |seed: &str| {
        let out = repro()
            .args(["--target", "2000", "--seed", seed, "table1"])
            .output()
            .expect("run repro");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_ne!(run("1"), run("2"));
}

//! Extension: where do the important correlated branches sit? (§3.6.2
//! quantified.) For the oracle's chosen 1-tag and 3-tag selective
//! histories, measure the distribution of distances from each branch to
//! its correlated instances.

use bp_core::{presence_stats, DistanceHistogram, OutcomeMatrix, TagCandidates};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's distance profile.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Distances of the single most important instance per branch.
    pub one_tag: DistanceHistogram,
    /// Distances across the 3-tag selective histories.
    pub three_tag: DistanceHistogram,
    /// 3-tag selective accuracy with full (ternary) outcomes.
    pub full_accuracy: f64,
    /// 3-tag accuracy with directions discarded — §3.1's in-path
    /// correlation isolated.
    pub presence_accuracy: f64,
    /// Ideal-static accuracy, the floor both sit on.
    pub static_accuracy: f64,
}

/// Full extension result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the distance analysis.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let trace = engine.trace(benchmark);
        // The oracle selection comes from the shared cache (it is the same
        // analysis figure 4 and table 2 use); only the outcome matrix for
        // the presence-only re-scoring is rebuilt locally.
        let oracle = engine.oracle(benchmark, &cfg.oracle);
        let cands = TagCandidates::collect(&trace, cfg.oracle.window, cfg.oracle.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, cfg.oracle.window);
        let presence = presence_stats(&matrix, &oracle, 3, cfg.oracle.counter);
        let profile = engine.profile(benchmark);
        Row {
            benchmark,
            one_tag: DistanceHistogram::measure(&trace, &oracle, 1, cfg.oracle.window),
            three_tag: DistanceHistogram::measure(&trace, &oracle, 3, cfg.oracle.window),
            full_accuracy: oracle.accuracy(3),
            presence_accuracy: presence.total().accuracy(),
            static_accuracy: profile.ideal_static_accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Extension: distance to (and information in) the oracle-chosen correlated branches",
            &[
                "benchmark",
                "1-tag mean",
                "1-tag ≤8 (%)",
                "3-tag mean",
                "3-tag ≤8 (%)",
                "not-in-path (%)",
                "ternary acc",
                "presence-only acc",
                "static acc",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                format!("{:.1}", row.one_tag.mean_distance()),
                pct(row.one_tag.fraction_within(8)),
                format!("{:.1}", row.three_tag.mean_distance()),
                pct(row.three_tag.fraction_within(8)),
                pct(row.three_tag.not_in_path_fraction()),
                pct(row.full_accuracy),
                pct(row.presence_accuracy),
                pct(row.static_accuracy),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlated_branches_are_close() {
        // The §3.6.2 claim itself: most chosen instances sit within half
        // the window.
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), 8);
        let mut close = 0;
        for row in &r.rows {
            assert!(row.one_tag.total() > 0);
            if row.one_tag.fraction_within(cfg.oracle.window / 2) > 0.5 {
                close += 1;
            }
        }
        assert!(
            close >= 6,
            "only {close}/8 benchmarks have close correlation"
        );
        assert!(r.to_string().contains("1-tag mean"));
        for row in &r.rows {
            // Discarding directions can only lose information; knowing the
            // path can only add over a static prediction (both up to
            // counter-warmup noise).
            assert!(
                row.presence_accuracy <= row.full_accuracy + 0.01,
                "{:?}",
                row.benchmark
            );
            assert!(
                row.presence_accuracy >= row.static_accuracy - 0.03,
                "{:?}",
                row.benchmark
            );
        }
    }
}

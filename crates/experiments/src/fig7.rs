//! Figure 7: distribution of branches best predicted by gshare, PAs, or an
//! ideal static predictor, weighted by execution frequency.

use bp_core::{best_of, BestOfDistribution, Contender, IDEAL_STATIC_NAME};
use bp_workloads::Benchmark;

use crate::render::{pct0, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's best-of distribution.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The distribution over {gshare, pas, ideal-static}.
    pub dist: BestOfDistribution,
}

/// Full figure 7 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 7 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let gshare = engine.gshare(benchmark, cfg.gshare_bits);
        let pas = engine.pas_default(benchmark);
        let profile = engine.profile(benchmark);
        let dist = best_of(
            &[
                Contender::new("gshare", &gshare),
                Contender::new("pas", &pas),
            ],
            &profile,
            0.99,
        );
        Row { benchmark, dist }
    });
    Result { rows }
}

impl Result {
    /// Mean fractions across benchmarks: (gshare, pas, ideal static) — the
    /// paper quotes 29% / 16% / 55%.
    pub fn means(&self) -> (f64, f64, f64) {
        let n = self.rows.len().max(1) as f64;
        let g: f64 = self.rows.iter().map(|r| r.dist.fraction("gshare")).sum();
        let p: f64 = self.rows.iter().map(|r| r.dist.fraction("pas")).sum();
        let s: f64 = self
            .rows
            .iter()
            .map(|r| r.dist.fraction(IDEAL_STATIC_NAME))
            .sum();
        (g / n, p / n, s / n)
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 7: best of gshare / PAs / ideal static (% of dynamic branches)",
            &[
                "benchmark",
                "Gshare Best",
                "Ideal Static Best",
                "PAs Best",
                ">99% biased (of static)",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct0(row.dist.fraction("gshare")),
                pct0(row.dist.fraction(IDEAL_STATIC_NAME)),
                pct0(row.dist.fraction("pas")),
                pct0(row.dist.static_bias_fraction()),
            ]);
        }
        let (g, p, s) = self.means();
        t.row(vec![
            "mean".to_owned(),
            pct0(g),
            pct0(s),
            pct0(p),
            String::new(),
        ]);
        t.fmt(f)?;
        writeln!(f, "\n(G=gshare best, S=ideal static best, P=PAs best)")?;
        for row in &self.rows {
            let segments = [
                ('G', row.dist.fraction("gshare")),
                ('S', row.dist.fraction(IDEAL_STATIC_NAME)),
                ('P', row.dist.fraction("pas")),
            ];
            writeln!(
                f,
                "{}",
                crate::render::stacked_bar(row.benchmark.short_name(), &segments, 50)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one_per_benchmark() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            let sum: f64 = row.dist.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{:?}", row.benchmark);
        }
        let (g, p, s) = r.means();
        assert!((g + p + s - 1.0).abs() < 1e-9);
    }
}

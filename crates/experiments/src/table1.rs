//! Table 1: benchmark inventory — the paper's dynamic conditional branch
//! counts next to the synthetic workloads' trace statistics.

use bp_trace::TraceStats;
use bp_workloads::Benchmark;

use crate::render::Table;
use crate::{Engine, ExperimentConfig};

/// One benchmark's Table 1 row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The paper's dynamic conditional branch count.
    pub paper_branches: u64,
    /// Our synthetic trace's statistics.
    pub stats: TraceStats,
}

/// Full Table 1 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the Table 1 experiment.
pub fn run(_cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| Row {
        benchmark,
        paper_branches: benchmark.paper_branch_count(),
        stats: TraceStats::of(&engine.trace(benchmark)),
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Table 1: benchmarks (synthetic analogs of SPECint95)",
            &[
                "benchmark",
                "paper input",
                "paper # branches",
                "ours # branches",
                "static sites",
                "taken rate",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.name().to_owned(),
                row.benchmark.paper_input().to_owned(),
                row.paper_branches.to_string(),
                row.stats.dynamic_conditional.to_string(),
                row.stats.static_conditional.to_string(),
                format!("{:.2}", row.stats.taken_rate()),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_benchmarks() {
        let cfg = ExperimentConfig {
            workload: bp_workloads::WorkloadConfig::default().with_target(1_000),
            ..ExperimentConfig::default()
        };
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), 8);
        for row in &r.rows {
            assert!(row.stats.dynamic_conditional >= 1_000);
        }
        assert!(r.to_string().contains("m88ksim"));
    }
}

//! Figure 6: fraction of dynamic branches in each per-address
//! predictability class (ideal static / loop / repeating / non-repeating).

use bp_core::PaClass;
use bp_workloads::Benchmark;

use crate::render::{pct0, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's class distribution (fractions of dynamic branches).
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Fractions in [`PaClass::ALL`] order (static, loop, repeating,
    /// non-repeating); sums to 1.
    pub fractions: [f64; 4],
    /// Within the static class, the dynamic fraction >99% biased.
    pub static_biased: f64,
}

/// Full figure 6 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 6 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let classification = engine.classification(benchmark, &cfg.classifier);
        let profile = engine.profile(benchmark);
        let dist = classification.dynamic_distribution();
        let mut fractions = [0f64; 4];
        for (i, class) in PaClass::ALL.iter().enumerate() {
            fractions[i] = dist.get(class).copied().unwrap_or(0.0);
        }
        Row {
            benchmark,
            fractions,
            static_biased: classification.static_class_bias_fraction(&profile, 0.99),
        }
    });
    Result { rows }
}

impl Result {
    /// Unweighted mean fraction per class across benchmarks — the numbers
    /// the paper quotes ("about half… a third… a sixth", §4.2.1).
    pub fn mean_fractions(&self) -> [f64; 4] {
        let mut mean = [0f64; 4];
        for row in &self.rows {
            for (m, f) in mean.iter_mut().zip(row.fractions) {
                *m += f;
            }
        }
        for m in &mut mean {
            *m /= self.rows.len().max(1) as f64;
        }
        mean
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 6: per-address predictability classes (% of dynamic branches)",
            &[
                "benchmark",
                "Ideal Static",
                "Loop",
                "Repeating",
                "Non-Repeating",
                ">99% biased (of static)",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct0(row.fractions[0]),
                pct0(row.fractions[1]),
                pct0(row.fractions[2]),
                pct0(row.fractions[3]),
                pct0(row.static_biased),
            ]);
        }
        let mean = self.mean_fractions();
        t.row(vec![
            "mean".to_owned(),
            pct0(mean[0]),
            pct0(mean[1]),
            pct0(mean[2]),
            pct0(mean[3]),
            String::new(),
        ]);
        t.fmt(f)?;
        writeln!(
            f,
            "\n(S=ideal static, L=loop, R=repeating, N=non-repeating)"
        )?;
        for row in &self.rows {
            let segments = [
                ('S', row.fractions[0]),
                ('L', row.fractions[1]),
                ('R', row.fractions[2]),
                ('N', row.fractions[3]),
            ];
            writeln!(
                f,
                "{}",
                crate::render::stacked_bar(row.benchmark.short_name(), &segments, 50)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            let sum: f64 = row.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{row:?}");
        }
        let mean = r.mean_fractions();
        assert!((mean.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

//! The evaluation engine: parallel per-benchmark fan-out plus a
//! cross-experiment memoization cache.
//!
//! Every experiment in this crate walks [`Benchmark::ALL`] and derives
//! artifacts from each benchmark's trace: per-branch predictor statistics
//! (gshare, interference-free gshare, PAs, …), the §3.4 oracle
//! selective-history analysis, the §4.1 per-address classification, and
//! the branch profile. Before this engine existed, each experiment
//! recomputed all of that from scratch — a `repro all` run performed the
//! default-config oracle analysis four times and the gshare simulation
//! six times per benchmark.
//!
//! [`Engine`] fixes both axes:
//!
//! * **Fan-out** — [`Engine::for_each_benchmark`] runs the per-benchmark
//!   closure on up to `jobs` worker threads ([`std::thread::scope`], an
//!   atomic work queue, and index-ordered result reassembly, so results
//!   are always in [`Benchmark::ALL`] order regardless of scheduling).
//! * **Memoization** — [`EvalCache`] holds every shared artifact behind
//!   `(benchmark, config-fingerprint)` keys. Concurrent requests for the
//!   same key compute the value exactly once (`Mutex`-guarded map of
//!   `OnceLock` cells); everyone else blocks briefly and shares the
//!   `Arc`. Hit/miss counters feed `repro --timings`.
//!
//! Determinism: cached values are pure functions of (workload config,
//! benchmark, artifact config) — the engine only changes *when* they are
//! computed, never *what* — and fan-out reassembles results in input
//! order, so a parallel run's output is byte-identical to `--jobs 1`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use bp_core::{
    Classification, Classifier, ClassifierConfig, OracleConfig, OracleResult, OracleSelector,
};
use bp_predictors::{
    simulate_batch, Gshare, GshareInterferenceFree, Pas, PasInterferenceFree, PerBranchStats,
    Predictor,
};
use bp_trace::{BranchProfile, Trace};
use bp_workloads::Benchmark;

use crate::{ExperimentConfig, TraceSet};

/// Fingerprint of a standard predictor configuration, used as a cache key.
///
/// Only predictors shared by two or more experiments earn a variant here;
/// experiment-specific designs (hybrids, family sweeps, …) simulate
/// directly and don't pollute the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKey {
    /// `Gshare::new(bits)`.
    Gshare {
        /// History/index bits.
        bits: u32,
    },
    /// `GshareInterferenceFree::new(bits)`.
    IfGshare {
        /// History/index bits.
        bits: u32,
    },
    /// `Pas::default()`.
    PasDefault,
    /// `PasInterferenceFree::new(history_bits)`.
    IfPas {
        /// Per-address history bits.
        history_bits: u32,
    },
}

impl PredictorKey {
    fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKey::Gshare { bits } => Box::new(Gshare::new(bits)),
            PredictorKey::IfGshare { bits } => Box::new(GshareInterferenceFree::new(bits)),
            PredictorKey::PasDefault => Box::<Pas>::default(),
            PredictorKey::IfPas { history_bits } => {
                Box::new(PasInterferenceFree::new(history_bits))
            }
        }
    }
}

/// One keyed compute-once map. The outer mutex is held only to find or
/// insert the cell; the (potentially expensive) computation runs outside
/// it, serialized per key by the cell's `OnceLock`.
struct CacheMap<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: std::hash::Hash + Eq + Clone, V> CacheMap<K, V> {
    fn new() -> Self {
        CacheMap {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get_or_compute(
        &self,
        key: K,
        hits: &AtomicU64,
        misses: &AtomicU64,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        let cell = {
            let mut map = self.map.lock().expect("cache map lock");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let value = cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        });
        if computed {
            misses.fetch_add(1, Ordering::Relaxed);
        } else {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(value)
    }

    fn len(&self) -> usize {
        self.map.lock().expect("cache map lock").len()
    }
}

impl<K, V> Default for CacheMap<K, V>
where
    K: std::hash::Hash + Eq + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

/// Cache hit/miss totals (reported through `repro --timings`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a previously computed artifact.
    pub hits: u64,
    /// Requests that computed the artifact.
    pub misses: u64,
    /// Distinct artifacts currently cached.
    pub entries: u64,
}

/// Cross-experiment memoization of shared evaluation artifacts, keyed by
/// `(benchmark, config fingerprint)`.
pub struct EvalCache {
    per_branch: CacheMap<(Benchmark, PredictorKey), PerBranchStats>,
    oracles: CacheMap<(Benchmark, OracleConfig), OracleResult>,
    classifications: CacheMap<(Benchmark, ClassifierConfig), Classification>,
    profiles: CacheMap<Benchmark, BranchProfile>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache {
            per_branch: CacheMap::new(),
            oracles: CacheMap::new(),
            classifications: CacheMap::new(),
            profiles: CacheMap::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss totals so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: (self.per_branch.len()
                + self.oracles.len()
                + self.classifications.len()
                + self.profiles.len()) as u64,
        }
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Worker-utilization accounting for the fan-out (reported through
/// `repro --timings`): total busy time inside per-benchmark closures vs
/// wall time of the fan-out regions.
#[derive(Debug, Clone, Copy, Default)]
pub struct FanoutStats {
    /// Seconds of worker busy time (summed across threads).
    pub busy_seconds: f64,
    /// Seconds of fan-out region wall time.
    pub wall_seconds: f64,
}

impl FanoutStats {
    /// Mean busy workers per fan-out second (`jobs` at perfect scaling,
    /// 1.0 when everything serializes).
    pub fn utilization(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds / self.wall_seconds
        }
    }
}

/// Shared evaluation state for a run: the trace set, the memoization
/// cache, and the worker-thread budget.
pub struct Engine {
    traces: Arc<TraceSet>,
    cache: EvalCache,
    jobs: usize,
    busy_nanos: AtomicU64,
    fanout_wall_nanos: AtomicU64,
}

impl Engine {
    /// An engine over `traces` using up to `jobs` worker threads
    /// (`jobs = 1` means fully sequential). Accepts a `TraceSet` by value
    /// or an `Arc<TraceSet>` shared with other engines (the artifact cache
    /// is always per-engine).
    pub fn new(traces: impl Into<Arc<TraceSet>>, jobs: usize) -> Self {
        Engine {
            traces: traces.into(),
            cache: EvalCache::new(),
            jobs: jobs.max(1),
            busy_nanos: AtomicU64::new(0),
            fanout_wall_nanos: AtomicU64::new(0),
        }
    }

    /// An engine with one worker per available core.
    pub fn with_available_parallelism(traces: impl Into<Arc<TraceSet>>) -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(traces, jobs)
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The underlying trace set.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The trace for `benchmark` (generated or disk-loaded on first use).
    pub fn trace(&self, benchmark: Benchmark) -> Arc<Trace> {
        self.traces.trace(benchmark)
    }

    /// Cache hit/miss totals.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fan-out utilization so far.
    pub fn fanout_stats(&self) -> FanoutStats {
        FanoutStats {
            busy_seconds: self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            wall_seconds: self.fanout_wall_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// Runs `f` once per benchmark of [`Benchmark::ALL`], in parallel,
    /// returning results in that order. See [`Engine::fan_out`].
    pub fn for_each_benchmark<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Benchmark) -> R + Sync,
    {
        self.fan_out(&Benchmark::ALL, f)
    }

    /// Runs `f` once per benchmark in `benchmarks`, on up to
    /// [`Engine::jobs`] worker threads, returning results in input order.
    ///
    /// Work is claimed from an atomic queue and results carry their input
    /// index, so the output order — and therefore everything downstream,
    /// including rendered tables — is independent of thread scheduling.
    pub fn fan_out<R, F>(&self, benchmarks: &[Benchmark], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Benchmark) -> R + Sync,
    {
        let started = Instant::now();
        let results = if self.jobs == 1 {
            benchmarks
                .iter()
                .map(|&b| {
                    let t0 = Instant::now();
                    let r = f(b);
                    self.busy_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    r
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, R)>> =
                Mutex::new(Vec::with_capacity(benchmarks.len()));
            std::thread::scope(|scope| {
                for _ in 0..self.jobs.min(benchmarks.len()) {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&benchmark) = benchmarks.get(i) else {
                                break;
                            };
                            let t0 = Instant::now();
                            local.push((i, f(benchmark)));
                            self.busy_nanos
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        collected.lock().expect("fan-out results").extend(local);
                    });
                }
            });
            let mut pairs = collected.into_inner().expect("fan-out results");
            pairs.sort_by_key(|&(i, _)| i);
            pairs.into_iter().map(|(_, r)| r).collect()
        };
        self.fanout_wall_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }

    /// Per-branch stats of a standard predictor, computed at most once per
    /// `(benchmark, key)` across all experiments.
    pub fn per_branch(&self, benchmark: Benchmark, key: PredictorKey) -> Arc<PerBranchStats> {
        self.cache.per_branch.get_or_compute(
            (benchmark, key),
            &self.cache.hits,
            &self.cache.misses,
            || {
                let trace = self.trace(benchmark);
                let mut batch = [key.build()];
                simulate_batch(&mut batch, &trace)
                    .pop()
                    .expect("one result per predictor")
            },
        )
    }

    /// Cached `Gshare::new(bits)` per-branch stats.
    pub fn gshare(&self, benchmark: Benchmark, bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::Gshare { bits })
    }

    /// Cached `GshareInterferenceFree::new(bits)` per-branch stats.
    pub fn if_gshare(&self, benchmark: Benchmark, bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::IfGshare { bits })
    }

    /// Cached `Pas::default()` per-branch stats.
    pub fn pas_default(&self, benchmark: Benchmark) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::PasDefault)
    }

    /// Cached `PasInterferenceFree::new(history_bits)` per-branch stats.
    pub fn if_pas(&self, benchmark: Benchmark, history_bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::IfPas { history_bits })
    }

    /// Cached oracle selective-history analysis for one configuration.
    pub fn oracle(&self, benchmark: Benchmark, cfg: &OracleConfig) -> Arc<OracleResult> {
        self.cache.oracles.get_or_compute(
            (benchmark, *cfg),
            &self.cache.hits,
            &self.cache.misses,
            || OracleSelector::analyze(&self.trace(benchmark), cfg),
        )
    }

    /// Cached per-address classification for one configuration.
    pub fn classification(
        &self,
        benchmark: Benchmark,
        cfg: &ClassifierConfig,
    ) -> Arc<Classification> {
        self.cache.classifications.get_or_compute(
            (benchmark, *cfg),
            &self.cache.hits,
            &self.cache.misses,
            || Classifier::classify(&self.trace(benchmark), cfg),
        )
    }

    /// Cached branch profile.
    pub fn profile(&self, benchmark: Benchmark) -> Arc<BranchProfile> {
        self.cache
            .profiles
            .get_or_compute(benchmark, &self.cache.hits, &self.cache.misses, || {
                BranchProfile::of(&self.trace(benchmark))
            })
    }

    /// Pre-warms the cache for a multi-experiment run: generates every
    /// trace (in parallel), then computes the four standard predictors'
    /// per-branch stats in a *single* batched pass per trace
    /// ([`simulate_batch`]), so no later experiment pays a separate
    /// simulation pass for them.
    pub fn prewarm(&self, cfg: &ExperimentConfig) {
        self.traces.generate_all(self.jobs);
        let keys = [
            PredictorKey::Gshare {
                bits: cfg.gshare_bits,
            },
            PredictorKey::IfGshare {
                bits: cfg.gshare_bits,
            },
            PredictorKey::PasDefault,
            PredictorKey::IfPas {
                history_bits: cfg.classifier.pas_history_bits,
            },
        ];
        self.for_each_benchmark(|benchmark| {
            // Skip the batch when everything is already cached (prewarm is
            // idempotent and cheap to call twice).
            let missing: Vec<PredictorKey> = {
                let map = self.cache.per_branch.map.lock().expect("cache map lock");
                keys.iter()
                    .copied()
                    .filter(|k| {
                        map.get(&(benchmark, *k))
                            .map(|cell| cell.get().is_none())
                            .unwrap_or(true)
                    })
                    .collect()
            };
            if missing.is_empty() {
                return;
            }
            let trace = self.trace(benchmark);
            let mut predictors: Vec<Box<dyn Predictor>> =
                missing.iter().map(|k| k.build()).collect();
            let results = simulate_batch(&mut predictors, &trace);
            for (key, stats) in missing.into_iter().zip(results) {
                self.cache.per_branch.get_or_compute(
                    (benchmark, key),
                    &self.cache.hits,
                    &self.cache.misses,
                    || stats,
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::simulate_per_branch;
    use bp_workloads::WorkloadConfig;

    fn quick_engine(jobs: usize) -> Engine {
        let cfg = WorkloadConfig::default().with_target(3_000);
        Engine::new(TraceSet::new(cfg), jobs)
    }

    #[test]
    fn cached_artifacts_compute_exactly_once() {
        let engine = quick_engine(2);
        let b = Benchmark::Compress;
        let first = engine.gshare(b, 10);
        let second = engine.gshare(b, 10);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);

        // A different fingerprint is a different artifact.
        let third = engine.gshare(b, 12);
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(engine.cache_stats().misses, 2);
    }

    #[test]
    fn cached_stats_match_direct_simulation() {
        let engine = quick_engine(1);
        let b = Benchmark::Go;
        let trace = engine.trace(b);
        let direct = simulate_per_branch(&mut Gshare::new(10), &trace);
        let cached = engine.gshare(b, 10);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn concurrent_same_key_requests_share_one_computation() {
        let engine = quick_engine(4);
        let results: Vec<Arc<PerBranchStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| engine.gshare(Benchmark::Gcc, 10)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 3);
    }

    #[test]
    fn fan_out_preserves_benchmark_order() {
        for jobs in [1, 2, 8] {
            let engine = quick_engine(jobs);
            let names = engine.for_each_benchmark(|b| b.name().to_owned());
            let expect: Vec<String> = Benchmark::ALL.iter().map(|b| b.name().to_owned()).collect();
            assert_eq!(names, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn prewarm_populates_standard_predictors_once() {
        let engine = quick_engine(2);
        let cfg = ExperimentConfig {
            workload: *engine.traces().config(),
            ..ExperimentConfig::default()
        };
        engine.prewarm(&cfg);
        let after_prewarm = engine.cache_stats();
        // 4 predictors x 8 benchmarks.
        assert_eq!(after_prewarm.misses, 32);

        // Every later request is a hit, and prewarming again adds nothing.
        let _ = engine.gshare(Benchmark::Perl, cfg.gshare_bits);
        engine.prewarm(&cfg);
        let end = engine.cache_stats();
        assert_eq!(end.misses, 32);
        assert!(end.hits >= 1);
    }

    #[test]
    fn oracle_and_classification_cache_by_config() {
        let engine = quick_engine(1);
        let b = Benchmark::Xlisp;
        let o1 = engine.oracle(b, &OracleConfig::default());
        let o2 = engine.oracle(b, &OracleConfig::default());
        assert!(Arc::ptr_eq(&o1, &o2));
        let narrow = OracleConfig {
            window: 8,
            ..OracleConfig::default()
        };
        let o3 = engine.oracle(b, &narrow);
        assert!(!Arc::ptr_eq(&o1, &o3));

        let c1 = engine.classification(b, &ClassifierConfig::default());
        let c2 = engine.classification(b, &ClassifierConfig::default());
        assert!(Arc::ptr_eq(&c1, &c2));

        let p1 = engine.profile(b);
        let p2 = engine.profile(b);
        assert!(Arc::ptr_eq(&p1, &p2));
    }
}

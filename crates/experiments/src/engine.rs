//! The evaluation engine: parallel per-benchmark fan-out plus a
//! cross-experiment memoization cache.
//!
//! Every experiment in this crate walks [`Benchmark::ALL`] and derives
//! artifacts from each benchmark's trace: per-branch predictor statistics
//! (gshare, interference-free gshare, PAs, …), the §3.4 oracle
//! selective-history analysis, the §4.1 per-address classification, and
//! the branch profile. Before this engine existed, each experiment
//! recomputed all of that from scratch — a `repro all` run performed the
//! default-config oracle analysis four times and the gshare simulation
//! six times per benchmark.
//!
//! [`Engine`] fixes both axes:
//!
//! * **Fan-out** — [`Engine::for_each_benchmark`] runs the per-benchmark
//!   closure on up to `jobs` worker threads ([`std::thread::scope`], an
//!   atomic work queue, and index-ordered result reassembly, so results
//!   are always in [`Benchmark::ALL`] order regardless of scheduling).
//! * **Memoization** — [`EvalCache`] holds every shared artifact behind
//!   `(benchmark, config-fingerprint)` keys. Concurrent requests for the
//!   same key compute the value exactly once (`Mutex`-guarded map of
//!   `OnceLock` cells); everyone else blocks briefly and shares the
//!   `Arc`. Hit/miss counters feed `repro --timings`.
//!
//! Determinism: cached values are pure functions of (workload config,
//! benchmark, artifact config) — the engine only changes *when* they are
//! computed, never *what* — and fan-out reassembles results in input
//! order, so a parallel run's output is byte-identical to `--jobs 1`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use bp_core::{
    BranchSelection, Classification, Classifier, ClassifierConfig, OracleConfig, OracleResult,
    OracleSelector, OutcomeMatrix, SweepMatrix, TagCandidates,
};
use bp_predictors::{
    simulate_batch_source, Gshare, GshareInterferenceFree, Pas, PasInterferenceFree,
    PerBranchStats, Perceptron, Predictor, Tage,
};
use bp_trace::{BranchProfile, BranchStreams, Pc, TagScheme, Trace};
use bp_workloads::Benchmark;

use crate::{ExperimentConfig, TraceSet, TraceSetSource};

/// Fingerprint of a standard predictor configuration, used as a cache key.
///
/// Only predictors shared by two or more experiments earn a variant here;
/// experiment-specific designs (hybrids, family sweeps, …) simulate
/// directly and don't pollute the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKey {
    /// `Gshare::new(bits)`.
    Gshare {
        /// History/index bits.
        bits: u32,
    },
    /// `GshareInterferenceFree::new(bits)`.
    IfGshare {
        /// History/index bits.
        bits: u32,
    },
    /// `Pas::default()`.
    PasDefault,
    /// `PasInterferenceFree::new(history_bits)`.
    IfPas {
        /// Per-address history bits.
        history_bits: u32,
    },
    /// `Tage::new(tables, base_bits)`.
    Tage {
        /// Tagged-table count (histories `4 << i`).
        tables: u32,
        /// Bimodal base index bits.
        base_bits: u32,
    },
    /// `Perceptron::new(history_bits)`.
    Perceptron {
        /// Global history bits.
        history_bits: u32,
    },
}

impl PredictorKey {
    fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKey::Gshare { bits } => Box::new(Gshare::new(bits)),
            PredictorKey::IfGshare { bits } => Box::new(GshareInterferenceFree::new(bits)),
            PredictorKey::PasDefault => Box::<Pas>::default(),
            PredictorKey::IfPas { history_bits } => {
                Box::new(PasInterferenceFree::new(history_bits))
            }
            PredictorKey::Tage { tables, base_bits } => Box::new(Tage::new(tables, base_bits)),
            PredictorKey::Perceptron { history_bits } => Box::new(Perceptron::new(history_bits)),
        }
    }
}

/// One keyed compute-once map. The outer mutex is held only to find or
/// insert the cell; the (potentially expensive) computation runs outside
/// it, serialized per key by the cell's `OnceLock`.
struct CacheMap<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: std::hash::Hash + Eq + Clone, V> CacheMap<K, V> {
    fn new() -> Self {
        CacheMap {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get_or_compute(
        &self,
        key: K,
        hits: &AtomicU64,
        misses: &AtomicU64,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        let cell = {
            let mut map = self.map.lock().expect("cache map lock");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let value = cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        });
        if computed {
            misses.fetch_add(1, Ordering::Relaxed);
        } else {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(value)
    }

    fn len(&self) -> usize {
        self.map.lock().expect("cache map lock").len()
    }
}

impl<K, V> Default for CacheMap<K, V>
where
    K: std::hash::Hash + Eq + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

/// Cache hit/miss totals (reported through `repro --timings`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a previously computed artifact.
    pub hits: u64,
    /// Requests that computed the artifact.
    pub misses: u64,
    /// Distinct artifacts currently cached.
    pub entries: u64,
}

/// Cross-experiment memoization of shared evaluation artifacts, keyed by
/// `(benchmark, config fingerprint)`.
pub struct EvalCache {
    per_branch: CacheMap<(Benchmark, PredictorKey), PerBranchStats>,
    oracles: CacheMap<(Benchmark, OracleConfig), OracleResult>,
    /// Shared window-sweep artifacts, keyed by the sweep's window list and
    /// candidate cap (the artifact is independent of counter and search
    /// strategy — those only affect the per-point subset search).
    sweeps: CacheMap<(Benchmark, Vec<usize>, Vec<usize>), SweepMatrix>,
    classifications: CacheMap<(Benchmark, ClassifierConfig), Classification>,
    /// Packed per-branch outcome streams, built in one trace pass and
    /// shared by every classification config and the branch profile.
    streams: CacheMap<Benchmark, BranchStreams>,
    profiles: CacheMap<Benchmark, BranchProfile>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache {
            per_branch: CacheMap::new(),
            oracles: CacheMap::new(),
            sweeps: CacheMap::new(),
            classifications: CacheMap::new(),
            streams: CacheMap::new(),
            profiles: CacheMap::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss totals so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: (self.per_branch.len()
                + self.oracles.len()
                + self.sweeps.len()
                + self.classifications.len()
                + self.streams.len()
                + self.profiles.len()) as u64,
        }
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Worker-utilization accounting for the fan-out (reported through
/// `repro --timings`): total busy time inside per-benchmark closures vs
/// wall time of the fan-out regions.
#[derive(Debug, Clone, Copy, Default)]
pub struct FanoutStats {
    /// Seconds of worker busy time (summed across threads).
    pub busy_seconds: f64,
    /// Seconds of fan-out region wall time.
    pub wall_seconds: f64,
}

impl FanoutStats {
    /// Mean busy workers per fan-out second (`jobs` at perfect scaling,
    /// 1.0 when everything serializes).
    pub fn utilization(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds / self.wall_seconds
        }
    }
}

/// Per-benchmark oracle phase accounting (reported through
/// `repro --timings`): where an oracle analysis spends its time —
/// candidate collection + matrix packing vs the subset search — and how
/// finely the search was sharded over the worker pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePhaseStats {
    /// Seconds spent collecting candidates and packing outcome matrices
    /// (including sweep-artifact builds and sub-window materialization).
    pub matrix_seconds: f64,
    /// Seconds spent in the per-branch subset search.
    pub search_seconds: f64,
    /// Branch-chunk work units the searches were split into (1 per
    /// analysis when the search ran serially).
    pub shards: u64,
    /// Oracle analyses performed (cache misses only).
    pub analyses: u64,
}

/// Per-benchmark classification phase accounting (reported through
/// `repro --timings`): where the §4 classification spends its time —
/// packing the per-branch outcome streams, the shifted-XNOR fixed-pattern
/// sweep, and the run-length loop/block/PAs replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassifyPhaseStats {
    /// Seconds packing the trace into [`BranchStreams`] (once per
    /// benchmark; shared by every classification config and the profile).
    pub stream_seconds: f64,
    /// Seconds in the shifted-XNOR k-ago sweep.
    pub sweep_seconds: f64,
    /// Seconds in the run-length loop/block replay and pattern-major
    /// IF-PAs scoring.
    pub replay_seconds: f64,
    /// Classifications performed (cache misses only).
    pub classifications: u64,
}

/// Shared evaluation state for a run: the trace set, the memoization
/// cache, and the worker-thread budget.
pub struct Engine {
    traces: Arc<TraceSet>,
    cache: EvalCache,
    jobs: usize,
    busy_nanos: AtomicU64,
    fanout_wall_nanos: AtomicU64,
    /// Threads currently executing fan-out work; the difference to `jobs`
    /// is the budget a nested shard-level fan-out may claim.
    active_workers: AtomicUsize,
    oracle_phases: Mutex<HashMap<Benchmark, OraclePhaseStats>>,
    classify_phases: Mutex<HashMap<Benchmark, ClassifyPhaseStats>>,
}

impl Engine {
    /// An engine over `traces` using up to `jobs` worker threads
    /// (`jobs = 1` means fully sequential). Accepts a `TraceSet` by value
    /// or an `Arc<TraceSet>` shared with other engines (the artifact cache
    /// is always per-engine).
    pub fn new(traces: impl Into<Arc<TraceSet>>, jobs: usize) -> Self {
        Engine {
            traces: traces.into(),
            cache: EvalCache::new(),
            jobs: jobs.max(1),
            busy_nanos: AtomicU64::new(0),
            fanout_wall_nanos: AtomicU64::new(0),
            active_workers: AtomicUsize::new(0),
            oracle_phases: Mutex::new(HashMap::new()),
            classify_phases: Mutex::new(HashMap::new()),
        }
    }

    /// An engine with one worker per available core.
    pub fn with_available_parallelism(traces: impl Into<Arc<TraceSet>>) -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(traces, jobs)
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shard budget a nested artifact build may claim right now: the
    /// calling thread plus whatever workers the benchmark-level fan-out
    /// currently leaves idle, never more than `--jobs`. Every nested
    /// kernel produces results identical to its serial twin for any
    /// budget, so this only steers wall-clock, never output.
    fn nested_budget(&self) -> usize {
        let spare = self
            .jobs
            .saturating_sub(self.active_workers.load(Ordering::Relaxed));
        (spare + 1).min(self.jobs)
    }

    /// The underlying trace set.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The trace for `benchmark` (generated or disk-loaded on first use).
    pub fn trace(&self, benchmark: Benchmark) -> Arc<Trace> {
        self.traces.trace(benchmark)
    }

    /// A replayable record source for `benchmark`. In a streaming trace
    /// set this never materializes the full trace (see
    /// [`TraceSet::source`]); otherwise it shares the in-memory trace, so
    /// artifact builds behave exactly as before.
    pub fn source(&self, benchmark: Benchmark) -> TraceSetSource {
        self.traces.source(benchmark)
    }

    /// Cache hit/miss totals.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fan-out utilization so far.
    pub fn fanout_stats(&self) -> FanoutStats {
        FanoutStats {
            busy_seconds: self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            wall_seconds: self.fanout_wall_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// Runs `f` once per benchmark of [`Benchmark::ALL`], in parallel,
    /// returning results in that order. See [`Engine::fan_out`].
    pub fn for_each_benchmark<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Benchmark) -> R + Sync,
    {
        self.fan_out(&Benchmark::ALL, f)
    }

    /// Runs `f` once per benchmark in `benchmarks`, on up to
    /// [`Engine::jobs`] worker threads, returning results in input order.
    ///
    /// Work is claimed from an atomic queue and results carry their input
    /// index, so the output order — and therefore everything downstream,
    /// including rendered tables — is independent of thread scheduling.
    pub fn fan_out<R, F>(&self, benchmarks: &[Benchmark], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Benchmark) -> R + Sync,
    {
        let started = Instant::now();
        let results = if self.jobs == 1 {
            self.active_workers.fetch_add(1, Ordering::Relaxed);
            let results = benchmarks
                .iter()
                .map(|&b| {
                    let t0 = Instant::now();
                    let r = f(b);
                    self.busy_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    r
                })
                .collect();
            self.active_workers.fetch_sub(1, Ordering::Relaxed);
            results
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, R)>> =
                Mutex::new(Vec::with_capacity(benchmarks.len()));
            std::thread::scope(|scope| {
                for _ in 0..self.jobs.min(benchmarks.len()) {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&benchmark) = benchmarks.get(i) else {
                                break;
                            };
                            let t0 = Instant::now();
                            self.active_workers.fetch_add(1, Ordering::Relaxed);
                            local.push((i, f(benchmark)));
                            self.active_workers.fetch_sub(1, Ordering::Relaxed);
                            self.busy_nanos
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        collected.lock().expect("fan-out results").extend(local);
                    });
                }
            });
            let mut pairs = collected.into_inner().expect("fan-out results");
            pairs.sort_by_key(|&(i, _)| i);
            pairs.into_iter().map(|(_, r)| r).collect()
        };
        self.fanout_wall_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }

    /// Per-branch stats of a standard predictor, computed at most once per
    /// `(benchmark, key)` across all experiments.
    pub fn per_branch(&self, benchmark: Benchmark, key: PredictorKey) -> Arc<PerBranchStats> {
        self.cache.per_branch.get_or_compute(
            (benchmark, key),
            &self.cache.hits,
            &self.cache.misses,
            || {
                let source = self.source(benchmark);
                let mut batch = [key.build()];
                simulate_batch_source(&mut batch, &source)
                    .expect("trace stream failed")
                    .pop()
                    .expect("one result per predictor")
            },
        )
    }

    /// Cached `Gshare::new(bits)` per-branch stats.
    pub fn gshare(&self, benchmark: Benchmark, bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::Gshare { bits })
    }

    /// Cached `GshareInterferenceFree::new(bits)` per-branch stats.
    pub fn if_gshare(&self, benchmark: Benchmark, bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::IfGshare { bits })
    }

    /// Cached `Pas::default()` per-branch stats.
    pub fn pas_default(&self, benchmark: Benchmark) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::PasDefault)
    }

    /// Cached `PasInterferenceFree::new(history_bits)` per-branch stats.
    pub fn if_pas(&self, benchmark: Benchmark, history_bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::IfPas { history_bits })
    }

    /// Cached `Tage::new(tables, base_bits)` per-branch stats.
    pub fn tage(&self, benchmark: Benchmark, tables: u32, base_bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::Tage { tables, base_bits })
    }

    /// Cached `Perceptron::new(history_bits)` per-branch stats.
    pub fn perceptron(&self, benchmark: Benchmark, history_bits: u32) -> Arc<PerBranchStats> {
        self.per_branch(benchmark, PredictorKey::Perceptron { history_bits })
    }

    /// Cached oracle selective-history analysis for one configuration.
    ///
    /// On a miss, the per-branch subset search is sharded over any worker
    /// budget the benchmark-level fan-out has left idle (see
    /// [`Engine::jobs`]) — `--jobs N` helps even when a single benchmark's
    /// oracle dominates the run.
    pub fn oracle(&self, benchmark: Benchmark, cfg: &OracleConfig) -> Arc<OracleResult> {
        self.cache.oracles.get_or_compute(
            (benchmark, *cfg),
            &self.cache.hits,
            &self.cache.misses,
            || {
                let source = self.source(benchmark);
                let t0 = Instant::now();
                let shards = self.nested_budget();
                let candidates = TagCandidates::collect_from_source_sharded(
                    &source,
                    cfg.window,
                    cfg.candidate_cap,
                    &TagScheme::ALL,
                    shards,
                )
                .expect("trace stream failed");
                let matrix = OutcomeMatrix::build_from_source_sharded(
                    &source,
                    &candidates,
                    cfg.window,
                    shards,
                )
                .expect("trace stream failed");
                let matrix_seconds = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let (result, shards) = self.sharded_select(&matrix, cfg);
                self.record_oracle_phases(
                    benchmark,
                    matrix_seconds,
                    t1.elapsed().as_secs_f64(),
                    shards,
                    1,
                );
                result
            },
        )
    }

    /// Cached oracle analyses for a whole window sweep, sharing one
    /// incremental artifact: candidates and matrix are computed once at the
    /// largest window ([`SweepMatrix::build`]) and every shorter window is
    /// materialized by masking — no extra trace passes. Results are
    /// byte-identical to per-window [`Engine::oracle`] calls and are
    /// inserted into the same cache, so either entry point can hit the
    /// other's work.
    ///
    /// `base.window` and `base.candidate_cap` are ignored; sweep point `i`
    /// uses `base` with `windows[i]` and `caps[i]`. Per-point caps keep
    /// each point's config (and so its cache key and result) exactly what
    /// a direct [`Engine::oracle`] call at that point would use, while the
    /// shared artifact still packs all points' candidate columns at once.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is not strictly ascending, exceeds
    /// [`bp_core::MAX_SWEEP_WINDOWS`] entries, or differs in length from
    /// `caps`.
    pub fn oracle_sweep(
        &self,
        benchmark: Benchmark,
        windows: &[usize],
        caps: &[usize],
        base: &OracleConfig,
    ) -> Vec<Arc<OracleResult>> {
        windows
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let point = OracleConfig {
                    window: n,
                    candidate_cap: caps[i],
                    ..*base
                };
                self.cache.oracles.get_or_compute(
                    (benchmark, point),
                    &self.cache.hits,
                    &self.cache.misses,
                    || {
                        // The artifact is built lazily on the first miss,
                        // then shared by every other point (and run).
                        let sweep = self.cache.sweeps.get_or_compute(
                            (benchmark, windows.to_vec(), caps.to_vec()),
                            &self.cache.hits,
                            &self.cache.misses,
                            || {
                                let t0 = Instant::now();
                                let sweep = SweepMatrix::build_from_source(
                                    &self.source(benchmark),
                                    windows,
                                    caps,
                                )
                                .expect("trace stream failed");
                                self.record_oracle_phases(
                                    benchmark,
                                    t0.elapsed().as_secs_f64(),
                                    0.0,
                                    0,
                                    0,
                                );
                                sweep
                            },
                        );
                        let t0 = Instant::now();
                        let matrix = sweep.materialize_parallel(i, self.nested_budget());
                        let matrix_seconds = t0.elapsed().as_secs_f64();
                        let t1 = Instant::now();
                        let (result, shards) = self.sharded_select(&matrix, &point);
                        self.record_oracle_phases(
                            benchmark,
                            matrix_seconds,
                            t1.elapsed().as_secs_f64(),
                            shards,
                            1,
                        );
                        result
                    },
                )
            })
            .collect()
    }

    /// Per-branch subset search over `matrix`, sharded across whatever
    /// worker budget is currently idle. Returns the result and the number
    /// of work units it was split into.
    ///
    /// Determinism: each branch's selection is a pure function of its
    /// matrix, branches are enumerated in PC order, and the merge is
    /// key-addressed — thread count and scheduling cannot change the
    /// result. Shard boundaries derive from the `--jobs` budget (not the
    /// momentary idle count), so reported shard counts are stable too.
    fn sharded_select(&self, matrix: &OutcomeMatrix, cfg: &OracleConfig) -> (OracleResult, u64) {
        let mut branches: Vec<(Pc, &bp_core::BranchMatrix)> = matrix.iter().collect();
        branches.sort_unstable_by_key(|&(pc, _)| pc);
        let spare = self
            .jobs
            .saturating_sub(self.active_workers.load(Ordering::Relaxed));
        let threads = (spare + 1).min(self.jobs).min(branches.len().max(1));
        if threads <= 1 {
            let result = branches
                .iter()
                .map(|&(pc, bm)| (pc, OracleSelector::select_branch(bm, cfg)))
                .collect();
            return (result, 1);
        }
        let chunk = branches.len().div_ceil(self.jobs * 8).max(1);
        let shards = branches.len().div_ceil(chunk) as u64;
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(Pc, BranchSelection)>> =
            Mutex::new(Vec::with_capacity(branches.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    self.active_workers.fetch_add(1, Ordering::Relaxed);
                    let mut local: Vec<(Pc, BranchSelection)> = Vec::new();
                    loop {
                        let start = next.fetch_add(1, Ordering::Relaxed) * chunk;
                        if start >= branches.len() {
                            break;
                        }
                        let end = (start + chunk).min(branches.len());
                        for &(pc, bm) in &branches[start..end] {
                            local.push((pc, OracleSelector::select_branch(bm, cfg)));
                        }
                    }
                    self.active_workers.fetch_sub(1, Ordering::Relaxed);
                    collected
                        .lock()
                        .expect("oracle shard results")
                        .extend(local);
                });
            }
        });
        let result = collected
            .into_inner()
            .expect("oracle shard results")
            .into_iter()
            .collect();
        (result, shards)
    }

    fn record_oracle_phases(
        &self,
        benchmark: Benchmark,
        matrix_seconds: f64,
        search_seconds: f64,
        shards: u64,
        analyses: u64,
    ) {
        let mut phases = self.oracle_phases.lock().expect("oracle phase stats");
        let entry = phases.entry(benchmark).or_default();
        entry.matrix_seconds += matrix_seconds;
        entry.search_seconds += search_seconds;
        entry.shards += shards;
        entry.analyses += analyses;
    }

    /// Per-benchmark oracle phase accounting so far, in [`Benchmark::ALL`]
    /// order (benchmarks without oracle analyses are omitted).
    pub fn oracle_phase_stats(&self) -> Vec<(Benchmark, OraclePhaseStats)> {
        let phases = self.oracle_phases.lock().expect("oracle phase stats");
        Benchmark::ALL
            .iter()
            .filter_map(|b| phases.get(b).map(|s| (*b, *s)))
            .collect()
    }

    /// Cached per-branch packed outcome streams — the bit-parallel
    /// substrate of every §4 classification (and the branch profile),
    /// built in a single trace pass per benchmark.
    pub fn streams(&self, benchmark: Benchmark) -> Arc<BranchStreams> {
        self.cache
            .streams
            .get_or_compute(benchmark, &self.cache.hits, &self.cache.misses, || {
                let source = self.source(benchmark);
                let t0 = Instant::now();
                let streams = BranchStreams::from_source_sharded(&source, self.nested_budget())
                    .expect("trace stream failed");
                self.record_classify_phases(benchmark, t0.elapsed().as_secs_f64(), 0.0, 0.0, 0);
                streams
            })
    }

    /// Cached per-address classification for one configuration. Every
    /// configuration of the same benchmark shares one [`BranchStreams`]
    /// artifact ([`Engine::streams`]).
    pub fn classification(
        &self,
        benchmark: Benchmark,
        cfg: &ClassifierConfig,
    ) -> Arc<Classification> {
        self.cache.classifications.get_or_compute(
            (benchmark, *cfg),
            &self.cache.hits,
            &self.cache.misses,
            || {
                let streams = self.streams(benchmark);
                let (classification, phases) =
                    Classifier::classify_streams_parallel(&streams, cfg, self.nested_budget());
                self.record_classify_phases(
                    benchmark,
                    0.0,
                    phases.sweep_seconds,
                    phases.replay_seconds,
                    1,
                );
                classification
            },
        )
    }

    /// Cached branch profile, derived by popcount from the packed streams
    /// (byte-identical to `BranchProfile::of` on the trace).
    pub fn profile(&self, benchmark: Benchmark) -> Arc<BranchProfile> {
        self.cache
            .profiles
            .get_or_compute(benchmark, &self.cache.hits, &self.cache.misses, || {
                self.streams(benchmark).profile()
            })
    }

    fn record_classify_phases(
        &self,
        benchmark: Benchmark,
        stream_seconds: f64,
        sweep_seconds: f64,
        replay_seconds: f64,
        classifications: u64,
    ) {
        let mut phases = self.classify_phases.lock().expect("classify phase stats");
        let entry = phases.entry(benchmark).or_default();
        entry.stream_seconds += stream_seconds;
        entry.sweep_seconds += sweep_seconds;
        entry.replay_seconds += replay_seconds;
        entry.classifications += classifications;
    }

    /// Per-benchmark classification phase accounting so far, in
    /// [`Benchmark::ALL`] order (benchmarks without classification work
    /// are omitted).
    pub fn classify_phase_stats(&self) -> Vec<(Benchmark, ClassifyPhaseStats)> {
        let phases = self.classify_phases.lock().expect("classify phase stats");
        Benchmark::ALL
            .iter()
            .filter_map(|b| phases.get(b).map(|s| (*b, *s)))
            .collect()
    }

    /// Pre-warms the cache for a multi-experiment run: generates every
    /// trace (in parallel), then computes the four standard predictors'
    /// per-branch stats in a *single* batched pass per trace
    /// ([`simulate_batch`]), so no later experiment pays a separate
    /// simulation pass for them.
    pub fn prewarm(&self, cfg: &ExperimentConfig) {
        if !self.traces.is_streaming() {
            self.traces.generate_all(self.jobs);
        }
        let keys = [
            PredictorKey::Gshare {
                bits: cfg.gshare_bits,
            },
            PredictorKey::IfGshare {
                bits: cfg.gshare_bits,
            },
            PredictorKey::PasDefault,
            PredictorKey::IfPas {
                history_bits: cfg.classifier.pas_history_bits,
            },
        ];
        self.for_each_benchmark(|benchmark| {
            // Skip the batch when everything is already cached (prewarm is
            // idempotent and cheap to call twice).
            let missing: Vec<PredictorKey> = {
                let map = self.cache.per_branch.map.lock().expect("cache map lock");
                keys.iter()
                    .copied()
                    .filter(|k| {
                        map.get(&(benchmark, *k))
                            .map(|cell| cell.get().is_none())
                            .unwrap_or(true)
                    })
                    .collect()
            };
            if missing.is_empty() {
                return;
            }
            let source = self.source(benchmark);
            let mut predictors: Vec<Box<dyn Predictor>> =
                missing.iter().map(|k| k.build()).collect();
            let results =
                simulate_batch_source(&mut predictors, &source).expect("trace stream failed");
            for (key, stats) in missing.into_iter().zip(results) {
                self.cache.per_branch.get_or_compute(
                    (benchmark, key),
                    &self.cache.hits,
                    &self.cache.misses,
                    || stats,
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::simulate_per_branch;
    use bp_workloads::WorkloadConfig;

    fn quick_engine(jobs: usize) -> Engine {
        let cfg = WorkloadConfig::default().with_target(3_000);
        Engine::new(TraceSet::new(cfg), jobs)
    }

    #[test]
    fn cached_artifacts_compute_exactly_once() {
        let engine = quick_engine(2);
        let b = Benchmark::Compress;
        let first = engine.gshare(b, 10);
        let second = engine.gshare(b, 10);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);

        // A different fingerprint is a different artifact.
        let third = engine.gshare(b, 12);
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(engine.cache_stats().misses, 2);
    }

    #[test]
    fn cached_stats_match_direct_simulation() {
        let engine = quick_engine(1);
        let b = Benchmark::Go;
        let trace = engine.trace(b);
        let direct = simulate_per_branch(&mut Gshare::new(10), &trace);
        let cached = engine.gshare(b, 10);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn concurrent_same_key_requests_share_one_computation() {
        let engine = quick_engine(4);
        let results: Vec<Arc<PerBranchStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| engine.gshare(Benchmark::Gcc, 10)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 3);
    }

    #[test]
    fn fan_out_preserves_benchmark_order() {
        for jobs in [1, 2, 8] {
            let engine = quick_engine(jobs);
            let names = engine.for_each_benchmark(|b| b.name().to_owned());
            let expect: Vec<String> = Benchmark::ALL.iter().map(|b| b.name().to_owned()).collect();
            assert_eq!(names, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn prewarm_populates_standard_predictors_once() {
        let engine = quick_engine(2);
        let cfg = ExperimentConfig {
            workload: *engine.traces().config(),
            ..ExperimentConfig::default()
        };
        engine.prewarm(&cfg);
        let after_prewarm = engine.cache_stats();
        // 4 predictors x 8 benchmarks.
        assert_eq!(after_prewarm.misses, 32);

        // Every later request is a hit, and prewarming again adds nothing.
        let _ = engine.gshare(Benchmark::Perl, cfg.gshare_bits);
        engine.prewarm(&cfg);
        let end = engine.cache_stats();
        assert_eq!(end.misses, 32);
        assert!(end.hits >= 1);
    }

    #[test]
    fn sharded_oracle_matches_serial_analysis() {
        // The branch-sharded search must agree exactly with the serial
        // reference whatever the worker budget.
        let serial = quick_engine(1);
        let sharded = quick_engine(4);
        let cfg = OracleConfig::default();
        for b in [Benchmark::Compress, Benchmark::Go] {
            let direct = OracleSelector::analyze(&serial.trace(b), &cfg);
            for engine in [&serial, &sharded] {
                let got = engine.oracle(b, &cfg);
                assert_eq!(got.branch_count(), direct.branch_count());
                for (pc, sel) in direct.iter() {
                    let g = got.selection(pc).expect("branch present");
                    assert_eq!(g.executions, sel.executions, "{b:?} {pc:#x}");
                    for k in 0..3 {
                        assert_eq!(g.best[k].tags, sel.best[k].tags, "{b:?} {pc:#x} k={k}");
                        assert_eq!(
                            g.best[k].correct, sel.best[k].correct,
                            "{b:?} {pc:#x} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_sweep_matches_per_window_oracles() {
        let windows = [8usize, 12, 16];
        let caps = [32usize, 40, 48];
        let base = OracleConfig::default();
        let swept = quick_engine(2);
        let plain = quick_engine(2);
        let b = Benchmark::Ijpeg;
        let sweep_results = swept.oracle_sweep(b, &windows, &caps, &base);
        for ((&n, &cap), swept_r) in windows.iter().zip(&caps).zip(&sweep_results) {
            let point = OracleConfig {
                window: n,
                candidate_cap: cap,
                ..base
            };
            let direct = plain.oracle(b, &point);
            assert_eq!(swept_r.branch_count(), direct.branch_count(), "n={n}");
            for (pc, sel) in direct.iter() {
                let g = swept_r.selection(pc).expect("branch present");
                for k in 0..3 {
                    assert_eq!(g.best[k].tags, sel.best[k].tags, "n={n} {pc:#x} k={k}");
                    assert_eq!(
                        g.best[k].correct, sel.best[k].correct,
                        "n={n} {pc:#x} k={k}"
                    );
                }
            }
        }
        // The sweep's points land in the ordinary oracle cache: asking for
        // one directly is a hit, not a recomputation.
        let misses_before = swept.cache_stats().misses;
        let again = swept.oracle(
            b,
            &OracleConfig {
                window: 12,
                candidate_cap: 40,
                ..base
            },
        );
        assert_eq!(swept.cache_stats().misses, misses_before);
        assert!(Arc::ptr_eq(&again, &sweep_results[1]));
        // And the phase accounting saw the analyses.
        let phases = swept.oracle_phase_stats();
        let (_, stats) = phases
            .iter()
            .find(|(bench, _)| *bench == b)
            .expect("phase stats recorded");
        assert_eq!(stats.analyses, windows.len() as u64);
        assert!(stats.shards >= windows.len() as u64);
        assert!(stats.matrix_seconds >= 0.0 && stats.search_seconds >= 0.0);
    }

    #[test]
    fn streaming_engine_matches_materialized() {
        let cfg = WorkloadConfig::default().with_target(3_000);
        let plain = Engine::new(TraceSet::new(cfg), 2);
        let streamed = Engine::new(TraceSet::new(cfg).with_streaming(), 2);
        let b = Benchmark::M88ksim;

        assert!(matches!(
            streamed.source(b),
            crate::TraceSetSource::Workload(_)
        ));
        assert_eq!(*streamed.gshare(b, 10), *plain.gshare(b, 10));
        assert_eq!(*streamed.pas_default(b), *plain.pas_default(b));
        let ccfg = ClassifierConfig::default();
        assert_eq!(
            *streamed.classification(b, &ccfg),
            *plain.classification(b, &ccfg)
        );
        assert_eq!(*streamed.profile(b), *plain.profile(b));

        let ocfg = OracleConfig::default();
        let so = streamed.oracle(b, &ocfg);
        let po = plain.oracle(b, &ocfg);
        assert_eq!(so.branch_count(), po.branch_count());
        for k in 1..=3 {
            assert_eq!(
                so.selective_stats(k).total(),
                po.selective_stats(k).total(),
                "k={k}"
            );
        }
    }

    #[test]
    fn oracle_and_classification_cache_by_config() {
        let engine = quick_engine(1);
        let b = Benchmark::Xlisp;
        let o1 = engine.oracle(b, &OracleConfig::default());
        let o2 = engine.oracle(b, &OracleConfig::default());
        assert!(Arc::ptr_eq(&o1, &o2));
        let narrow = OracleConfig {
            window: 8,
            ..OracleConfig::default()
        };
        let o3 = engine.oracle(b, &narrow);
        assert!(!Arc::ptr_eq(&o1, &o3));

        let c1 = engine.classification(b, &ClassifierConfig::default());
        let c2 = engine.classification(b, &ClassifierConfig::default());
        assert!(Arc::ptr_eq(&c1, &c2));

        let p1 = engine.profile(b);
        let p2 = engine.profile(b);
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn streams_shared_by_classifications_and_profile() {
        let engine = quick_engine(2);
        let b = Benchmark::Vortex;

        // Two classifier configs and the profile all ride one stream build.
        let wide = ClassifierConfig::default();
        let narrow = ClassifierConfig {
            max_period: 8,
            pas_history_bits: 4,
        };
        let _ = engine.classification(b, &wide);
        let _ = engine.classification(b, &narrow);
        let _ = engine.profile(b);
        let s1 = engine.streams(b);
        let s2 = engine.streams(b);
        assert!(Arc::ptr_eq(&s1, &s2));

        // Results match the direct (stream-free) entry points exactly.
        let trace = engine.trace(b);
        assert_eq!(
            *engine.classification(b, &wide),
            Classifier::classify(&trace, &wide)
        );
        assert_eq!(
            *engine.classification(b, &narrow),
            Classifier::classify(&trace, &narrow)
        );
        assert_eq!(*engine.profile(b), BranchProfile::of(&trace));

        // Phase accounting saw one stream build and two classifications.
        let phases = engine.classify_phase_stats();
        let (_, stats) = phases
            .iter()
            .find(|(bench, _)| *bench == b)
            .expect("classify phase stats recorded");
        assert_eq!(stats.classifications, 2);
        assert!(stats.stream_seconds >= 0.0);
        assert!(stats.sweep_seconds >= 0.0 && stats.replay_seconds >= 0.0);
    }
}

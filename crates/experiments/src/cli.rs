//! Small shared helpers for the command-line binaries.

/// Largest accepted `--target` value: 100 billion branches. Past this the
/// request is almost certainly a typo (at ~10⁸ branches/s that is a
/// multi-day run), so it is rejected with a clear error instead of being
/// attempted.
pub const MAX_TARGET_BRANCHES: u64 = 100_000_000_000;

/// Parses a branch-count target: plain digits (underscore separators
/// allowed) with an optional `k`/`m`/`b` suffix — `200_000`, `2m`,
/// `100m`, `1b`. Case-insensitive. Rejects zero and anything above
/// [`MAX_TARGET_BRANCHES`] with a message naming the limit.
pub fn parse_target(s: &str) -> Result<usize, String> {
    let t = s.trim().to_ascii_lowercase();
    let (num, mult): (&str, u64) = if let Some(p) = t.strip_suffix('k') {
        (p, 1_000)
    } else if let Some(p) = t.strip_suffix('m') {
        (p, 1_000_000)
    } else if let Some(p) = t.strip_suffix('b') {
        (p, 1_000_000_000)
    } else {
        (t.as_str(), 1)
    };
    let digits: String = num.chars().filter(|&c| c != '_').collect();
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return Err(format!(
            "invalid branch count '{s}' (examples: 200000, 500k, 2m, 100m, 1b)"
        ));
    }
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("branch count '{s}' does not fit in 64 bits"))?;
    let total = n
        .checked_mul(mult)
        .filter(|&t| t <= MAX_TARGET_BRANCHES)
        .ok_or_else(|| {
            format!(
                "target '{s}' is unreasonably large: the limit is \
                 {MAX_TARGET_BRANCHES} branches (100b)"
            )
        })?;
    if total == 0 {
        return Err("branch count must be positive".to_owned());
    }
    Ok(total as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_suffixed_targets() {
        assert_eq!(parse_target("200000"), Ok(200_000));
        assert_eq!(parse_target("200_000"), Ok(200_000));
        assert_eq!(parse_target("500k"), Ok(500_000));
        assert_eq!(parse_target("2m"), Ok(2_000_000));
        assert_eq!(parse_target("100M"), Ok(100_000_000));
        assert_eq!(parse_target("1b"), Ok(1_000_000_000));
        assert_eq!(parse_target(" 10m "), Ok(10_000_000));
    }

    #[test]
    fn rejects_garbage_zero_and_absurd_targets() {
        for bad in ["", "m", "12q", "1.5m", "-3", "10mm"] {
            assert!(parse_target(bad).is_err(), "{bad:?} must be rejected");
        }
        assert!(parse_target("0").unwrap_err().contains("positive"));
        assert_eq!(parse_target("100b"), Ok(100_000_000_000));
        for absurd in ["101b", "999999b", "18446744073709551615b"] {
            let err = parse_target(absurd).unwrap_err();
            assert!(err.contains("100b"), "{absurd}: {err}");
        }
    }
}

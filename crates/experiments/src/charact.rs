//! Workload characterization: trace-level predictability metrics and
//! hard-to-predict (H2P) branch accounting for the eight synthetic
//! workloads.
//!
//! The metrics follow the branch-predictability characterization
//! literature (arXiv:2512.15827): **taken rate** (fraction of dynamic
//! branches taken), **transition rate** (fraction of consecutive
//! same-branch executions whose outcomes differ), and **best-k history
//! correlation** (the k-ago self-agreement the §4.1.2 fixed-pattern
//! kernel maximizes over `k ≤ 16`). H2P branches follow the
//! hard-to-predict accounting of the learned-predictor line of work
//! (arXiv:1906.08170): static branches a reference gshare predicts below
//! an accuracy floor despite enough executions to train, reported with
//! their share of all mispredictions.
//!
//! Everything derives from the engine's cached [`BranchStreams`] and
//! per-branch gshare stats, so a `repro all` run pays nothing extra.

use bp_trace::BranchStreams;
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// Largest history distance the correlation sweep considers.
pub const MAX_K: usize = 16;
/// Minimum dynamic executions before a branch can count as H2P (below
/// this, low accuracy is warmup, not hardness).
pub const H2P_MIN_EXECUTIONS: u64 = 64;
/// Reference-predictor accuracy floor under which a branch is H2P.
pub const H2P_MAX_ACCURACY: f64 = 0.95;

/// Fraction of dynamic branches taken, over all branches of `streams`.
pub fn taken_rate(streams: &BranchStreams) -> f64 {
    let mut taken = 0u64;
    let mut total = 0u64;
    for (_, s) in streams.iter() {
        taken += s.taken_count();
        total += s.len() as u64;
    }
    if total == 0 {
        0.0
    } else {
        taken as f64 / total as f64
    }
}

/// Fraction of consecutive same-branch execution pairs whose outcomes
/// differ. A branch with `r` maximal runs over `n` executions contributes
/// `r - 1` transitions over `n - 1` pairs.
pub fn transition_rate(streams: &BranchStreams) -> f64 {
    let mut transitions = 0u64;
    let mut pairs = 0u64;
    for (_, s) in streams.iter() {
        if s.is_empty() {
            continue;
        }
        transitions += s.runs().count() as u64 - 1;
        pairs += s.len() as u64 - 1;
    }
    if pairs == 0 {
        0.0
    } else {
        transitions as f64 / pairs as f64
    }
}

/// The `(k, agreement)` maximizing k-ago self-correlation over
/// `k = 1..=max_k`: the fraction of dynamic branches whose outcome equals
/// their own outcome `k` executions earlier (warmup predicts taken,
/// exactly as [`bp_predictors::KthAgo`] scores). Ties break toward the
/// smallest `k`.
pub fn best_k_correlation(streams: &BranchStreams, max_k: usize) -> (usize, f64) {
    let total: u64 = streams.iter().map(|(_, s)| s.len() as u64).sum();
    if total == 0 {
        return (1, 0.0);
    }
    let mut best = (1usize, 0.0f64);
    for k in 1..=max_k {
        let correct: u64 = streams
            .iter()
            .map(|(_, s)| bp_core::kth_ago_correct(s, k))
            .sum();
        let agreement = correct as f64 / total as f64;
        if agreement > best.1 {
            best = (k, agreement);
        }
    }
    best
}

/// One benchmark's characterization row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Static branch count.
    pub static_branches: usize,
    /// Fraction of dynamic branches taken.
    pub taken_rate: f64,
    /// Fraction of consecutive same-branch pairs that flip.
    pub transition_rate: f64,
    /// Best history distance `k` and its self-agreement fraction.
    pub best_k: (usize, f64),
    /// Static branches under the H2P thresholds.
    pub h2p_count: usize,
    /// Share of all reference-predictor mispredictions charged to H2P
    /// branches.
    pub h2p_miss_share: f64,
}

/// Full characterization result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Reference predictor history bits (for the table caption).
    pub gshare_bits: u32,
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the characterization experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let streams = engine.streams(benchmark);
        let reference = engine.gshare(benchmark, cfg.gshare_bits);
        let mut h2p_count = 0usize;
        let mut h2p_misses = 0u64;
        for (_, stats) in reference.iter() {
            if stats.predictions >= H2P_MIN_EXECUTIONS && stats.accuracy() < H2P_MAX_ACCURACY {
                h2p_count += 1;
                h2p_misses += stats.mispredictions();
            }
        }
        let total_misses = reference.total().mispredictions();
        Row {
            benchmark,
            static_branches: streams.static_count(),
            taken_rate: taken_rate(&streams),
            transition_rate: transition_rate(&streams),
            best_k: best_k_correlation(&streams, MAX_K),
            h2p_count,
            h2p_miss_share: if total_misses == 0 {
                0.0
            } else {
                h2p_misses as f64 / total_misses as f64
            },
        }
    });
    Result {
        gshare_bits: cfg.gshare_bits,
        rows,
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Characterization: predictability metrics per workload",
            &[
                "benchmark",
                "static",
                "taken",
                "transition",
                "best-k",
                "corr@k",
                "H2P",
                "H2P miss share",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                row.static_branches.to_string(),
                pct(row.taken_rate),
                pct(row.transition_rate),
                row.best_k.0.to_string(),
                pct(row.best_k.1),
                row.h2p_count.to_string(),
                pct(row.h2p_miss_share),
            ]);
        }
        t.fmt(f)?;
        writeln!(
            f,
            "\n(taken/transition/corr in %; correlation swept over k <= {MAX_K}; \
             H2P: >= {H2P_MIN_EXECUTIONS} executions and < {:.0}% gshare({}) accuracy)",
            H2P_MAX_ACCURACY * 100.0,
            self.gshare_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::script::{BranchScript, Interleave, Segment, TraceSpec};
    use bp_trace::BranchStreams;

    fn streams_of(segments: Vec<Segment>) -> BranchStreams {
        let spec = TraceSpec {
            branches: vec![BranchScript::new(0x40, segments)],
            interleave: Interleave::RoundRobin,
        };
        BranchStreams::of(&spec.build())
    }

    #[test]
    fn pure_run_has_zero_transition_rate() {
        let s = streams_of(vec![Segment::Run {
            taken: true,
            len: 100,
        }]);
        assert_eq!(transition_rate(&s), 0.0);
        assert_eq!(taken_rate(&s), 1.0);
    }

    #[test]
    fn alternating_pattern_has_unit_transition_rate() {
        let s = streams_of(vec![Segment::Pattern {
            bits: vec![true, false],
            repeats: 50,
        }]);
        assert_eq!(transition_rate(&s), 1.0);
        assert_eq!(taken_rate(&s), 0.5);
        // Perfect period 2: k=2 self-agreement misses only the one
        // warmup default among the first two executions (99/100 here).
        let (k, corr) = best_k_correlation(&s, 4);
        assert_eq!(k, 2);
        assert!(corr >= 0.99, "corr {corr}");
    }

    #[test]
    fn loop_taken_rate_is_trip_over_trip_plus_one() {
        // A loop executing its body n times per visit is `trip = n - 1`
        // takens followed by one exit in the DSL, so the taken rate of a
        // trip-t loop is t/(t+1) — i.e. (n-1)/n.
        for trip in [3usize, 7, 15] {
            let s = streams_of(vec![Segment::Loop { trip, exits: 40 }]);
            let want = trip as f64 / (trip + 1) as f64;
            assert!(
                (taken_rate(&s) - want).abs() < 1e-12,
                "trip {trip}: {} != {want}",
                taken_rate(&s)
            );
            // And its period is trip+1: best-k lands exactly there.
            let (k, corr) = best_k_correlation(&s, MAX_K);
            assert_eq!(k, trip + 1);
            assert!(corr > 0.95, "trip {trip} corr {corr}");
        }
    }

    #[test]
    fn empty_streams_do_not_divide_by_zero() {
        let s = BranchStreams::default();
        assert_eq!(taken_rate(&s), 0.0);
        assert_eq!(transition_rate(&s), 0.0);
        assert_eq!(best_k_correlation(&s, MAX_K), (1, 0.0));
    }

    #[test]
    fn rows_cover_all_benchmarks_with_sane_ranges() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), Benchmark::ALL.len());
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.taken_rate), "{row:?}");
            assert!((0.0..=1.0).contains(&row.transition_rate), "{row:?}");
            assert!((1..=MAX_K).contains(&row.best_k.0), "{row:?}");
            assert!((0.0..=1.0).contains(&row.best_k.1), "{row:?}");
            assert!((0.0..=1.0).contains(&row.h2p_miss_share), "{row:?}");
            assert!(row.h2p_count <= row.static_branches, "{row:?}");
            assert!(row.static_branches > 0, "{row:?}");
        }
    }
}

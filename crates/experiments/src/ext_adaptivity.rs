//! Extension: the role of adaptivity (Sechrest et al. \[5\], Young et al.
//! \[12\], paper §2.2) — statically determined PHT contents vs adaptive
//! 2-bit counters, both interference-free and self-profiled, for the
//! global and per-address families.

use bp_predictors::{simulate, StaticPhtGshare, StaticPhtPas};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's adaptive-vs-static comparison (accuracies 0..=1).
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Adaptive interference-free gshare.
    pub adaptive_global: f64,
    /// Frozen-majority interference-free gshare (same profiling/testing
    /// set, as in the referenced studies).
    pub static_global: f64,
    /// Adaptive interference-free PAs.
    pub adaptive_per_address: f64,
    /// Frozen-majority interference-free PAs.
    pub static_per_address: f64,
}

/// Full extension result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the adaptivity comparison.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let trace = engine.trace(benchmark);
        let pas_bits = cfg.classifier.pas_history_bits;
        Row {
            benchmark,
            adaptive_global: engine
                .if_gshare(benchmark, cfg.gshare_bits)
                .total()
                .accuracy(),
            static_global: simulate(
                &mut StaticPhtGshare::profile(&trace, cfg.gshare_bits),
                &trace,
            )
            .accuracy(),
            adaptive_per_address: engine.if_pas(benchmark, pas_bits).total().accuracy(),
            static_per_address: simulate(&mut StaticPhtPas::profile(&trace, pas_bits), &trace)
                .accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Extension: adaptive 2-bit counters vs statically determined PHTs (accuracy %)",
            &[
                "benchmark",
                "IF-gshare",
                "static-PHT gshare",
                "IF-PAs",
                "static-PHT PAs",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct(row.adaptive_global),
                pct(row.static_global),
                pct(row.adaptive_per_address),
                pct(row.static_per_address),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_phts_competitive_when_self_profiled() {
        // The Sechrest/Young finding: with profile == test set, frozen
        // majority PHTs perform on par with (and often above) adaptive
        // counters.
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        let mut static_wins = 0;
        for row in &r.rows {
            assert!(row.static_global > row.adaptive_global - 0.03, "{row:?}");
            if row.static_global >= row.adaptive_global {
                static_wins += 1;
            }
        }
        assert!(static_wins >= 4, "static PHT won only {static_wins}/8");
    }
}

//! Figure 5: 3-branch selective-history accuracy as a function of the
//! history length *n* (how far back correlated branches are searched),
//! swept from 8 to 32 in steps of 4.
//!
//! The paper's finding: windows shorter than 12 are limiting, gains flatten
//! past ~20 — the important correlated branches are close by.

use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// The swept history lengths, matching the paper's x-axis.
pub const HISTORY_LENGTHS: [usize; 7] = [8, 12, 16, 20, 24, 28, 32];

/// One benchmark's accuracy series over [`HISTORY_LENGTHS`].
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// 3-tag selective accuracy per history length.
    pub accuracy: [f64; 7],
}

/// Full figure 5 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 5 experiment.
///
/// The whole sweep shares one incremental artifact per benchmark
/// ([`Engine::oracle_sweep`]): candidates and outcome matrix are built
/// once at the largest window and each shorter point is derived by
/// masking. The per-point candidate caps are derived once, up front, as a
/// pure function of the sweep spec — both tagging schemes can name up to
/// 2n instances per execution, so a cap below `2n + 16` drops candidates
/// on arbitrary tie-breaks and bends the curve downward. Point n=16 at
/// the default cap coincides with [`ExperimentConfig::default`]'s oracle
/// settings, so that entry is shared with figure 4 and table 2.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let caps: Vec<usize> = HISTORY_LENGTHS
        .iter()
        .map(|&n| cfg.oracle.candidate_cap.max(2 * n + 16))
        .collect();
    let rows = engine.for_each_benchmark(|benchmark| {
        let points = engine.oracle_sweep(benchmark, &HISTORY_LENGTHS, &caps, &cfg.oracle);
        let mut accuracy = [0f64; 7];
        for (slot, oracle) in accuracy.iter_mut().zip(&points) {
            *slot = oracle.accuracy(3);
        }
        Row {
            benchmark,
            accuracy,
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 5: 3-branch selective-history accuracy vs history length (accuracy %)",
            &[
                "benchmark",
                "n=8",
                "n=12",
                "n=16",
                "n=20",
                "n=24",
                "n=28",
                "n=32",
            ],
        );
        for row in &self.rows {
            let mut cells = vec![row.benchmark.short_name().to_owned()];
            cells.extend(row.accuracy.iter().map(|&a| pct(a)));
            t.row(cells);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workloads::WorkloadConfig;

    #[test]
    fn longer_windows_help_or_hold() {
        let cfg = ExperimentConfig {
            workload: WorkloadConfig::default().with_target(15_000),
            ..ExperimentConfig::default()
        };
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            // The oracle over a longer window sees a superset of candidate
            // tags; small non-monotonicities can appear through counter
            // warmup, but the end of the sweep should not be materially
            // below its start.
            assert!(row.accuracy[6] >= row.accuracy[0] - 0.01, "{:?}", row);
        }
    }
}

//! Figure 5: 3-branch selective-history accuracy as a function of the
//! history length *n* (how far back correlated branches are searched),
//! swept from 8 to 32 in steps of 4.
//!
//! The paper's finding: windows shorter than 12 are limiting, gains flatten
//! past ~20 — the important correlated branches are close by.

use bp_core::OracleConfig;
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// The swept history lengths, matching the paper's x-axis.
pub const HISTORY_LENGTHS: [usize; 7] = [8, 12, 16, 20, 24, 28, 32];

/// One benchmark's accuracy series over [`HISTORY_LENGTHS`].
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// 3-tag selective accuracy per history length.
    pub accuracy: [f64; 7],
}

/// Full figure 5 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 5 experiment.
///
/// At the default window (16) the swept configuration coincides with
/// [`ExperimentConfig::default`]'s oracle settings, so that point is a
/// cache hit shared with figure 4, table 2 and the extensions.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let mut accuracy = [0f64; 7];
        for (i, &n) in HISTORY_LENGTHS.iter().enumerate() {
            let oracle_cfg = OracleConfig {
                window: n,
                // Both tagging schemes can name up to 2n instances per
                // execution; a cap below that drops candidates on
                // arbitrary tie-breaks and bends the curve downward.
                candidate_cap: cfg.oracle.candidate_cap.max(2 * n + 16),
                ..cfg.oracle
            };
            accuracy[i] = engine.oracle(benchmark, &oracle_cfg).accuracy(3);
        }
        Row {
            benchmark,
            accuracy,
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 5: 3-branch selective-history accuracy vs history length (accuracy %)",
            &[
                "benchmark",
                "n=8",
                "n=12",
                "n=16",
                "n=20",
                "n=24",
                "n=28",
                "n=32",
            ],
        );
        for row in &self.rows {
            let mut cells = vec![row.benchmark.short_name().to_owned()];
            cells.extend(row.accuracy.iter().map(|&a| pct(a)));
            t.row(cells);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workloads::WorkloadConfig;

    #[test]
    fn longer_windows_help_or_hold() {
        let cfg = ExperimentConfig {
            workload: WorkloadConfig::default().with_target(15_000),
            ..ExperimentConfig::default()
        };
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            // The oracle over a longer window sees a superset of candidate
            // tags; small non-monotonicities can appear through counter
            // warmup, but the end of the sweep should not be materially
            // below its start.
            assert!(row.accuracy[6] >= row.accuracy[0] - 0.01, "{:?}", row);
        }
    }
}

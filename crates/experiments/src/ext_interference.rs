//! Extension: Talcott/Young-style interference accounting (paper §2.2) —
//! classify every gshare prediction as clean, neutral, destructive, or
//! constructive against an interference-free shadow twin, and reconcile
//! the net damage with the measured gshare-vs-IF-gshare gap.

use bp_predictors::{simulate, InterferenceGshare, InterferenceStats};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's interference breakdown.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The per-prediction classification.
    pub stats: InterferenceStats,
    /// Plain gshare accuracy.
    pub gshare: f64,
    /// Interference-free gshare accuracy.
    pub if_gshare: f64,
}

impl Row {
    /// Net accuracy damage attributed by the accounting, as a fraction of
    /// all predictions.
    pub fn accounted_damage(&self) -> f64 {
        self.stats.net_destruction() as f64 / self.stats.total().max(1) as f64
    }

    /// The externally measured gap (IF-gshare − gshare accuracy).
    pub fn measured_gap(&self) -> f64 {
        self.if_gshare - self.gshare
    }
}

/// Full extension result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the interference accounting.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let trace = engine.trace(benchmark);
        let mut instrumented = InterferenceGshare::new(cfg.gshare_bits);
        let g = simulate(&mut instrumented, &trace);
        let if_g = engine.if_gshare(benchmark, cfg.gshare_bits).total();
        // Instrumentation must not change behavior; sanity-check once.
        debug_assert_eq!(g, engine.gshare(benchmark, cfg.gshare_bits).total());
        Row {
            benchmark,
            stats: instrumented.stats(),
            gshare: g.accuracy(),
            if_gshare: if_g.accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Extension: gshare PHT interference accounting (% of predictions)",
            &[
                "benchmark",
                "interfered",
                "destructive",
                "constructive",
                "net damage",
                "IF-gap (measured)",
            ],
        );
        for row in &self.rows {
            let total = row.stats.total().max(1) as f64;
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct(row.stats.interference_rate()),
                pct(row.stats.destructive as f64 / total),
                pct(row.stats.constructive as f64 / total),
                pct(row.accounted_damage()),
                pct(row.measured_gap()),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_brackets_the_measured_gap() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            let total = row.stats.total();
            assert!(total > 0, "{:?}", row.benchmark);
            // The categories partition all predictions.
            assert_eq!(
                row.stats.clean
                    + row.stats.neutral
                    + row.stats.destructive
                    + row.stats.constructive,
                total
            );
            // Damage accounting and the measured gap agree in rough
            // magnitude: the shadow twin *is* the IF predictor, so the net
            // damage equals the gap up to shadow-training differences.
            assert!(
                (row.accounted_damage() - row.measured_gap()).abs() < 0.02,
                "{:?}: accounted {} vs measured {}",
                row.benchmark,
                row.accounted_damage(),
                row.measured_gap()
            );
        }
    }

    #[test]
    fn gcc_has_the_most_interference() {
        // The large-static-footprint benchmark must show the highest
        // interference rate.
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        let gcc = r
            .rows
            .iter()
            .find(|r| r.benchmark == Benchmark::Gcc)
            .expect("gcc row");
        for row in &r.rows {
            if row.benchmark != Benchmark::Gcc {
                assert!(
                    gcc.stats.interference_rate() >= row.stats.interference_rate(),
                    "{:?} beats gcc: {} vs {}",
                    row.benchmark,
                    row.stats.interference_rate(),
                    gcc.stats.interference_rate()
                );
            }
        }
    }
}

//! Figure 8: distribution of branches best predicted using global
//! correlation (the better of interference-free gshare and the 3-branch
//! selective history), the per-address class predictors of §4.1, or an
//! ideal static predictor — weighted by execution frequency.

use bp_core::{best_of, per_branch_max, BestOfDistribution, Contender, IDEAL_STATIC_NAME};
use bp_workloads::Benchmark;

use crate::render::{pct0, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's best-of distribution.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Distribution over {global, per-address, ideal-static}.
    pub dist: BestOfDistribution,
}

/// Full figure 8 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 8 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let profile = engine.profile(benchmark);

        // Global contender: IF-gshare or 3-tag selective, per branch.
        let if_gshare = engine.if_gshare(benchmark, cfg.gshare_bits);
        let oracle = engine.oracle(benchmark, &cfg.oracle);
        let global = per_branch_max(&if_gshare, &oracle.selective_stats(3));

        // Per-address contender: best of loop/repeating/IF-PAs.
        let classification = engine.classification(benchmark, &cfg.classifier);
        let per_address = classification.best_per_address_stats();

        let dist = best_of(
            &[
                Contender::new("global", &global),
                Contender::new("per-address", &per_address),
            ],
            &profile,
            0.99,
        );
        Row { benchmark, dist }
    });
    Result { rows }
}

impl Result {
    /// Mean fractions across benchmarks: (global, per-address, ideal
    /// static) — the paper quotes 38% / 22% / 40%.
    pub fn means(&self) -> (f64, f64, f64) {
        let n = self.rows.len().max(1) as f64;
        let g: f64 = self.rows.iter().map(|r| r.dist.fraction("global")).sum();
        let p: f64 = self
            .rows
            .iter()
            .map(|r| r.dist.fraction("per-address"))
            .sum();
        let s: f64 = self
            .rows
            .iter()
            .map(|r| r.dist.fraction(IDEAL_STATIC_NAME))
            .sum();
        (g / n, p / n, s / n)
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 8: best of global correlation / per-address / ideal static (% of dynamic branches)",
            &[
                "benchmark",
                "Global Best",
                "Ideal Static Best",
                "Per-Address Best",
                ">99% biased (of static)",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct0(row.dist.fraction("global")),
                pct0(row.dist.fraction(IDEAL_STATIC_NAME)),
                pct0(row.dist.fraction("per-address")),
                pct0(row.dist.static_bias_fraction()),
            ]);
        }
        let (g, p, s) = self.means();
        t.row(vec![
            "mean".to_owned(),
            pct0(g),
            pct0(s),
            pct0(p),
            String::new(),
        ]);
        t.fmt(f)?;
        writeln!(
            f,
            "\n(G=global best, S=ideal static best, P=per-address best)"
        )?;
        for row in &self.rows {
            let segments = [
                ('G', row.dist.fraction("global")),
                ('S', row.dist.fraction(IDEAL_STATIC_NAME)),
                ('P', row.dist.fraction("per-address")),
            ];
            writeln!(
                f,
                "{}",
                crate::render::stacked_bar(row.benchmark.short_name(), &segments, 50)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            let sum: f64 = row.dist.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{:?}", row.benchmark);
        }
    }

    #[test]
    fn static_share_shrinks_vs_fig7() {
        // Figure 8's contenders are (interference-free) strengthenings of
        // figure 7's, so the ideal-static share should not grow materially
        // (paper: 55% -> 40%). Interference occasionally helps a branch by
        // accident, hence the small tolerance.
        let cfg = ExperimentConfig::quick();
        let engine = crate::test_engine(&cfg);
        let f7 = crate::fig7::run(&cfg, &engine);
        let f8 = run(&cfg, &engine);
        let (_, _, s7) = f7.means();
        let (_, _, s8) = f8.means();
        assert!(s8 <= s7 + 0.02, "fig8 static {s8} vs fig7 static {s7}");
    }
}

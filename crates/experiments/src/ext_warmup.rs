//! Extension: warmup curves and misprediction burstiness.
//!
//! Accuracy per trace decile quantifies *training time* — the effect
//! EXPERIMENTS.md identifies as the main reason the reproduction's
//! "w/ Corr" gains are compressed relative to the paper's 26-million-branch
//! traces — and the inter-misprediction gap structure shows how those
//! misses would land on a pipeline (scattered stutter vs overlapping
//! bursts).

use bp_core::MispredictProfile;
use bp_predictors::{Gshare, GshareInterferenceFree, Pas, Predictor};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// One (benchmark, predictor) warmup/burstiness row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Predictor display name.
    pub predictor: String,
    /// The measured profile.
    pub profile: MispredictProfile,
}

/// Full extension result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Rows grouped by benchmark, predictors in a fixed order.
    pub rows: Vec<Row>,
}

/// Runs the warmup/burstiness measurement.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let per_benchmark = engine.for_each_benchmark(|benchmark| {
        let trace = engine.trace(benchmark);
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Gshare::new(cfg.gshare_bits)),
            Box::new(GshareInterferenceFree::new(cfg.gshare_bits)),
            Box::new(Pas::default()),
        ];
        let mut rows = Vec::new();
        for p in &mut predictors {
            let profile = MispredictProfile::measure(p.as_mut(), &trace);
            rows.push(Row {
                benchmark,
                predictor: p.name(),
                profile,
            });
        }
        rows
    });
    Result {
        rows: per_benchmark.into_iter().flatten().collect(),
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Extension: warmup (accuracy by trace decile) and misprediction burstiness",
            &[
                "benchmark",
                "predictor",
                "decile 1",
                "decile 5",
                "decile 10",
                "warmup gain (pp)",
                "mean clean run",
                "bursty (<8) %",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                row.predictor.clone(),
                pct(row.profile.decile_accuracy(0)),
                pct(row.profile.decile_accuracy(4)),
                pct(row.profile.decile_accuracy(9)),
                format!("{:+.2}", row.profile.warmup_gain() * 100.0),
                format!("{:.1}", row.profile.mean_gap()),
                pct(row.profile.burst_fraction(8)),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_positive_where_training_dominates() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), 8 * 3);
        // gcc's huge static footprint must show clear gshare warmup at
        // quick scale.
        let gcc_gshare = r
            .rows
            .iter()
            .find(|r| r.benchmark == Benchmark::Gcc && r.predictor.starts_with("gshare"))
            .expect("gcc gshare row");
        assert!(
            gcc_gshare.profile.warmup_gain() > 0.01,
            "gain {}",
            gcc_gshare.profile.warmup_gain()
        );
        // Profiles are internally consistent.
        for row in &r.rows {
            let acc = row.profile.accuracy();
            assert!((0.5..=1.0).contains(&acc), "{row:?}");
        }
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 every experiment, default trace length
//! repro table2 fig4         a subset
//! repro --quick all         40k-branch traces (fast smoke run)
//! repro --target 1000000 all   paper-scale traces
//! repro --seed 7 fig6       different workload seed
//! repro --cache DIR all     persist generated traces as .bpt files
//! repro --jobs 4 all        four worker threads (same output as --jobs 1)
//! repro --timings OUT.json all   per-experiment wall clock + cache stats
//! ```
//!
//! Experiments share one evaluation [`Engine`]: traces, predictor
//! simulations, oracle analyses and classifications are memoized across
//! experiments, and per-benchmark work fans out over `--jobs` worker
//! threads. Results are reassembled in benchmark order, so stdout is
//! byte-identical whatever the job count.

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use bp_experiments::goldens::{self, Goldens};
use bp_experiments::{run_experiment, Engine, ExperimentConfig, TraceSet, EXPERIMENT_IDS};

fn usage() {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--target N[k|m|b]] [--cache DIR] [--stream] \
         [--jobs N] [--timings FILE] [--bare] [--goldens FILE] [--verify-goldens] \
         [--write-goldens] <experiment...|all>"
    );
    eprintln!("experiments: {}", EXPERIMENT_IDS.join(" "));
}

/// One experiment's wall-clock measurement.
struct Timing {
    id: String,
    seconds: f64,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_timings(
    path: &str,
    cfg: &ExperimentConfig,
    engine: &Engine,
    timings: &[Timing],
    total_seconds: f64,
) -> std::io::Result<()> {
    let cache = engine.cache_stats();
    let fanout = engine.fanout_stats();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.workload.seed));
    out.push_str(&format!(
        "  \"target_branches\": {},\n",
        cfg.workload.target_branches
    ));
    out.push_str(&format!("  \"jobs\": {},\n", engine.jobs()));
    out.push_str(&format!("  \"total_seconds\": {total_seconds:.3},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let sep = if i + 1 == timings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}}}{}\n",
            json_escape(&t.id),
            t.seconds,
            sep
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"oracle\": [\n");
    let phases = engine.oracle_phase_stats();
    for (i, (benchmark, p)) in phases.iter().enumerate() {
        let sep = if i + 1 == phases.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"analyses\": {}, \"shards\": {}, \
             \"matrix_seconds\": {:.3}, \"search_seconds\": {:.3}}}{}\n",
            benchmark.short_name(),
            p.analyses,
            p.shards,
            p.matrix_seconds,
            p.search_seconds,
            sep
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"classify\": [\n");
    let classify = engine.classify_phase_stats();
    for (i, (benchmark, p)) in classify.iter().enumerate() {
        let sep = if i + 1 == classify.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"classifications\": {}, \
             \"stream_seconds\": {:.3}, \"sweep_seconds\": {:.3}, \
             \"replay_seconds\": {:.3}}}{}\n",
            benchmark.short_name(),
            p.classifications,
            p.stream_seconds,
            p.sweep_seconds,
            p.replay_seconds,
            sep
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},\n",
        cache.hits, cache.misses, cache.entries
    ));
    out.push_str(&format!(
        "  \"threads\": {{\"busy_seconds\": {:.3}, \"fanout_wall_seconds\": {:.3}, \
         \"utilization\": {:.3}}}\n",
        fanout.busy_seconds,
        fanout.wall_seconds,
        fanout.utilization()
    ));
    out.push_str("}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

fn main() -> ExitCode {
    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut cache_dir: Option<String> = None;
    let mut stream = false;
    let mut timings_path: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut bare = false;
    let mut goldens_path: Option<String> = None;
    let mut verify_goldens = false;
    let mut write_goldens = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--cache" => match args.next() {
                Some(dir) => cache_dir = Some(dir),
                None => {
                    eprintln!("error: --cache needs a directory");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => cfg.workload.seed = seed,
                None => {
                    eprintln!("error: --seed needs an unsigned integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--target" => match args.next().map(|v| bp_experiments::cli::parse_target(&v)) {
                Some(Ok(t)) => cfg.workload.target_branches = t,
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --target needs a branch count (e.g. 2m, 100m, 1b)");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--stream" => stream = true,
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("error: --jobs needs a worker count of at least 1");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--timings" => match args.next() {
                Some(path) => timings_path = Some(path),
                None => {
                    eprintln!("error: --timings needs a file path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--bare" => bare = true,
            "--goldens" => match args.next() {
                Some(path) => goldens_path = Some(path),
                None => {
                    eprintln!("error: --goldens needs a file path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--verify-goldens" => verify_goldens = true,
            "--write-goldens" => write_goldens = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| (*s).to_owned()).collect();
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("error: unknown experiment: {id}");
            usage();
            return ExitCode::FAILURE;
        }
    }

    let goldens_file = goldens_path
        .map(std::path::PathBuf::from)
        .unwrap_or_else(goldens::default_path);
    let committed_goldens = if verify_goldens {
        match Goldens::load(&goldens_file) {
            Ok(g) => {
                if let Err(e) = g.check_config(&cfg) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                Some(g)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let mut fresh_goldens = Goldens::new(&cfg);
    let mut golden_mismatches: Vec<String> = Vec::new();

    if !bare {
        println!(
            "# Reproduction run: seed={} target={} branches/benchmark\n",
            cfg.workload.seed, cfg.workload.target_branches
        );
    }
    let mut traces = match cache_dir {
        Some(dir) => TraceSet::with_disk_cache(cfg.workload, dir),
        None => TraceSet::new(cfg.workload),
    };
    if stream {
        traces = traces.with_streaming();
    }
    let engine = match jobs {
        Some(n) => Engine::new(traces, n),
        None => Engine::with_available_parallelism(traces),
    };

    let run_started = Instant::now();
    let mut timings: Vec<Timing> = Vec::new();

    // A multi-experiment run warms the shared cache up front: every trace
    // is generated and the standard predictors are simulated in one batched
    // pass per trace, so no experiment pays for them again.
    if ids.len() > 1 {
        let started = Instant::now();
        engine.prewarm(&cfg);
        let seconds = started.elapsed().as_secs_f64();
        eprintln!("[prewarm done in {seconds:.1}s]\n");
        timings.push(Timing {
            id: "prewarm".to_owned(),
            seconds,
        });
    }

    for id in &ids {
        let started = Instant::now();
        let rendered = run_experiment(id, &cfg, &engine).expect("ids validated above");
        println!("{rendered}");
        if write_goldens || verify_goldens {
            fresh_goldens.record(id, goldens::fingerprint(&rendered));
        }
        if let Some(committed) = &committed_goldens {
            if let Err(m) = committed.verify(id, &rendered) {
                golden_mismatches.push(m.to_string());
            }
        }
        let seconds = started.elapsed().as_secs_f64();
        eprintln!("[{id} done in {seconds:.1}s]\n");
        timings.push(Timing {
            id: id.clone(),
            seconds,
        });
    }

    let total_seconds = run_started.elapsed().as_secs_f64();
    let cache = engine.cache_stats();
    eprintln!(
        "[total {:.1}s, jobs={}, cache {} hits / {} misses]",
        total_seconds,
        engine.jobs(),
        cache.hits,
        cache.misses
    );
    if let Some(path) = timings_path {
        if let Err(e) = write_timings(&path, &cfg, &engine, &timings, total_seconds) {
            eprintln!("error: could not write timings to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if write_goldens {
        if let Err(e) = fresh_goldens.write(&goldens_file) {
            eprintln!(
                "error: could not write goldens to {}: {e}",
                goldens_file.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[wrote {} golden fingerprints to {}]",
            fresh_goldens.len(),
            goldens_file.display()
        );
    }
    if verify_goldens {
        if golden_mismatches.is_empty() {
            eprintln!("[goldens verified: {} experiments]", ids.len());
        } else {
            for m in &golden_mismatches {
                eprintln!("golden mismatch: {m}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

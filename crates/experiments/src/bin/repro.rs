//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 every experiment, default trace length
//! repro table2 fig4         a subset
//! repro --quick all         40k-branch traces (fast smoke run)
//! repro --target 1000000 all   paper-scale traces
//! repro --seed 7 fig6       different workload seed
//! repro --cache DIR all     persist generated traces as .bpt files
//! ```

use std::process::ExitCode;

use bp_experiments::{
    ext_adaptivity, ext_distance, ext_family, ext_hybrids, ext_interference, ext_warmup, fig4, fig5, fig6, fig7, fig8,
    fig9, table1, table2, table3, ExperimentConfig, TraceSet, EXPERIMENT_IDS,
};

fn usage() {
    eprintln!("usage: repro [--quick] [--seed N] [--target N] [--cache DIR] <experiment...|all>");
    eprintln!("experiments: {}", EXPERIMENT_IDS.join(" "));
}

fn main() -> ExitCode {
    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ExperimentConfig::quick(),
            "--cache" => match args.next() {
                Some(dir) => cache_dir = Some(dir),
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => cfg.workload.seed = seed,
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--target" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => cfg.workload.target_branches = t,
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| (*s).to_owned()).collect();
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment: {id}");
            usage();
            return ExitCode::FAILURE;
        }
    }

    println!(
        "# Reproduction run: seed={} target={} branches/benchmark\n",
        cfg.workload.seed, cfg.workload.target_branches
    );
    let mut traces = match cache_dir {
        Some(dir) => TraceSet::with_disk_cache(cfg.workload, dir),
        None => TraceSet::new(cfg.workload),
    };
    for id in &ids {
        let started = std::time::Instant::now();
        match id.as_str() {
            "table1" => println!("{}", table1::run(&cfg, &mut traces)),
            "fig4" => println!("{}", fig4::run(&cfg, &mut traces)),
            "fig5" => println!("{}", fig5::run(&cfg, &mut traces)),
            "table2" => println!("{}", table2::run(&cfg, &mut traces)),
            "fig6" => println!("{}", fig6::run(&cfg, &mut traces)),
            "table3" => println!("{}", table3::run(&cfg, &mut traces)),
            "fig7" => println!("{}", fig7::run(&cfg, &mut traces)),
            "fig8" => println!("{}", fig8::run(&cfg, &mut traces)),
            "fig9" => println!("{}", fig9::run(&cfg, &mut traces)),
            "hybrids" => println!("{}", ext_hybrids::run(&cfg, &mut traces)),
            "interference" => println!("{}", ext_interference::run(&cfg, &mut traces)),
            "distance" => println!("{}", ext_distance::run(&cfg, &mut traces)),
            "adaptivity" => println!("{}", ext_adaptivity::run(&cfg, &mut traces)),
            "family" => println!("{}", ext_family::run(&cfg, &mut traces)),
            "warmup" => println!("{}", ext_warmup::run(&cfg, &mut traces)),
            _ => unreachable!("ids validated above"),
        }
        eprintln!("[{} done in {:.1}s]\n", id, started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

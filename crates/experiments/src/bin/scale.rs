//! `scale` — paper-scale single-benchmark runs through the streaming
//! pipeline.
//!
//! ```text
//! scale --bench m88ksim --target 100m            classification + oracle, streamed
//! scale --bench gcc --target 2m --materialized   same run via the in-memory path
//! scale --target 10m --cache DIR                 stream through an on-disk .bpt2
//! scale --target 1b --skip-oracle                classification only
//! scale --target 100m --jobs 8                   sharded executor + parallel kernels
//! scale --target 1b --artifacts DIR              reuse packed .bps artifacts (mmap)
//! scale --artifacts DIR --artifacts-budget-gb 2  cap the store, LRU-evict over budget
//! ```
//!
//! The artifact summary on stdout is deterministic and identical between
//! the streaming and `--materialized` paths, for every `--jobs` value,
//! and whether artifacts were rebuilt or re-opened (CI diffs all of
//! these); wall-clock per phase — with the thread count that produced it —
//! and peak resident memory go to stderr. In streaming mode the full
//! trace never exists in memory — the workload is consumed chunk by
//! chunk, either regenerated per scan or read back through a fixed-size
//! window from the `--cache` stream file. With `--artifacts DIR` the
//! packed streams and oracle matrix are persisted as `.bps` files on
//! first use and re-opened zero-copy afterwards; a rotten artifact is
//! evicted with a one-line notice and rebuilt. `--artifacts-budget-gb`
//! caps the store: when a save busts the budget, least-recently-used
//! artifacts (loads refresh recency) are evicted, again one notice per
//! file, sparing whatever the current run just wrote.

use std::process::ExitCode;
use std::time::Instant;

use bp_core::{
    Classifier, ClassifierConfig, OracleConfig, OracleSelector, OutcomeMatrix, PaClass,
    TagCandidates,
};
use bp_experiments::artifacts::{matrix_config_fp, streams_config_fp, ArtifactStore};
use bp_experiments::cli::parse_target;
use bp_experiments::TraceSet;
use bp_trace::{BranchStreams, TagScheme};
use bp_workloads::{Benchmark, WorkloadConfig};

fn usage() {
    eprintln!(
        "usage: scale [--bench NAME] [--target N[k|m|b]] [--seed N] [--cache DIR] \
         [--artifacts DIR] [--artifacts-budget-gb F] [--jobs N] [--materialized] \
         [--skip-oracle] [--oracle-window N] [--oracle-cap N]"
    );
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
    eprintln!("benchmarks: {}", names.join(" "));
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let mut bench = Benchmark::M88ksim;
    let mut cfg = WorkloadConfig::default().with_target(10_000_000);
    let mut cache_dir: Option<String> = None;
    let mut artifacts_dir: Option<String> = None;
    let mut artifacts_budget: Option<u64> = None;
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut materialized = false;
    let mut skip_oracle = false;
    let mut oracle_cfg = OracleConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => {
                let name = args.next().unwrap_or_default();
                match Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name() == name || b.short_name() == name)
                {
                    Some(b) => bench = b,
                    None => {
                        eprintln!("error: unknown benchmark '{name}'");
                        usage();
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--target" => match args.next().map(|v| parse_target(&v)) {
                Some(Ok(t)) => cfg.target_branches = t,
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --target needs a branch count (e.g. 10m, 100m, 1b)");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => cfg.seed = seed,
                None => {
                    eprintln!("error: --seed needs an unsigned integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--cache" => match args.next() {
                Some(dir) => cache_dir = Some(dir),
                None => {
                    eprintln!("error: --cache needs a directory");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--artifacts" => match args.next() {
                Some(dir) => artifacts_dir = Some(dir),
                None => {
                    eprintln!("error: --artifacts needs a directory");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--artifacts-budget-gb" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(gb) if gb > 0.0 => {
                    artifacts_budget = Some((gb * (1u64 << 30) as f64) as u64);
                }
                _ => {
                    eprintln!("error: --artifacts-budget-gb needs a positive size in GiB");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("error: --jobs needs a positive thread count");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--materialized" => materialized = true,
            "--skip-oracle" => skip_oracle = true,
            "--oracle-window" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => oracle_cfg.window = n,
                _ => {
                    eprintln!("error: --oracle-window needs a positive length");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--oracle-cap" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => oracle_cfg.candidate_cap = n,
                _ => {
                    eprintln!("error: --oracle-cap needs a positive candidate count");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let mut traces = match &cache_dir {
        Some(dir) => TraceSet::with_disk_cache(cfg, dir),
        None => TraceSet::new(cfg),
    };
    if !materialized {
        traces = traces.with_streaming();
    }
    if materialized {
        // Pre-materialize so the streaming/materialized split is explicit
        // in the phase timings rather than hidden in the first scan.
        let t0 = Instant::now();
        let _ = traces.trace(bench);
        eprintln!("[materialize: {:.1}s]", t0.elapsed().as_secs_f64());
    }
    let source = traces.source(bench);
    let store = match &artifacts_dir {
        Some(dir) => match ArtifactStore::open(dir) {
            Ok(s) => Some(s.with_budget(artifacts_budget)),
            Err(e) => {
                eprintln!("error: cannot open artifact directory {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "# scale run: bench={} seed={} target={}",
        bench.name(),
        cfg.seed,
        cfg.target_branches
    );

    let t0 = Instant::now();
    let streams_fp = streams_config_fp(bench.name(), cfg.seed, cfg.target_branches);
    let reused = store
        .as_ref()
        .and_then(|s| s.load_streams(bench.name(), streams_fp));
    let streams = match reused {
        Some((streams, mapped)) => {
            eprintln!(
                "[streams: {:.1}s, reused ({})]",
                t0.elapsed().as_secs_f64(),
                if mapped { "mmap" } else { "read" }
            );
            streams
        }
        None => {
            let streams = match BranchStreams::from_source_sharded(&source, jobs) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: trace scan failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(store) = &store {
                store.save_streams(bench.name(), &streams, streams_fp);
            }
            eprintln!(
                "[streams: {:.1}s, {jobs} threads]",
                t0.elapsed().as_secs_f64()
            );
            streams
        }
    };
    println!("conditionals: {}", streams.dynamic_count());
    println!("static branches: {}", streams.static_count());

    let t0 = Instant::now();
    let (classification, _) =
        Classifier::classify_streams_parallel(&streams, &ClassifierConfig::default(), jobs);
    eprintln!(
        "[classify: {:.1}s, {jobs} threads]",
        t0.elapsed().as_secs_f64()
    );
    let dist = classification.dynamic_distribution();
    let mut static_counts: std::collections::HashMap<PaClass, u64> = Default::default();
    for (_, scores) in classification.iter() {
        *static_counts.entry(scores.class()).or_insert(0) += 1;
    }
    for class in PaClass::ALL {
        println!(
            "class {}: static={} dynamic={:.6}",
            class.label(),
            static_counts.get(&class).copied().unwrap_or(0),
            dist.get(&class).copied().unwrap_or(0.0)
        );
    }
    drop(classification);

    if !skip_oracle {
        let t0 = Instant::now();
        let matrix_fp = matrix_config_fp(
            bench.name(),
            cfg.seed,
            cfg.target_branches,
            oracle_cfg.window,
            oracle_cfg.candidate_cap,
        );
        let reused = store.as_ref().and_then(|s| {
            s.load_matrix(
                bench.name(),
                oracle_cfg.window,
                oracle_cfg.candidate_cap,
                matrix_fp,
            )
        });
        let matrix = match reused {
            Some((matrix, mapped)) => {
                eprintln!(
                    "[oracle matrix: {:.1}s, reused ({})]",
                    t0.elapsed().as_secs_f64(),
                    if mapped { "mmap" } else { "read" }
                );
                matrix
            }
            None => {
                let candidates = match TagCandidates::collect_from_source_sharded(
                    &source,
                    oracle_cfg.window,
                    oracle_cfg.candidate_cap,
                    &TagScheme::ALL,
                    jobs,
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: candidate scan failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                eprintln!(
                    "[oracle candidates: {:.1}s, {jobs} threads]",
                    t0.elapsed().as_secs_f64()
                );
                let t0 = Instant::now();
                let matrix = match OutcomeMatrix::build_from_source_sharded(
                    &source,
                    &candidates,
                    oracle_cfg.window,
                    jobs,
                ) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("error: matrix scan failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Some(store) = &store {
                    store.save_matrix(
                        bench.name(),
                        oracle_cfg.window,
                        oracle_cfg.candidate_cap,
                        &matrix,
                        matrix_fp,
                    );
                }
                eprintln!(
                    "[oracle matrix: {:.1}s, {jobs} threads]",
                    t0.elapsed().as_secs_f64()
                );
                matrix
            }
        };
        let t0 = Instant::now();
        let oracle = OracleSelector::analyze_matrix_parallel(&matrix, &oracle_cfg, jobs);
        eprintln!(
            "[oracle select: {:.1}s, {jobs} threads]",
            t0.elapsed().as_secs_f64()
        );
        println!("oracle branches: {}", oracle.branch_count());
        for k in 1..=3 {
            println!("oracle accuracy k={k}: {:.6}", oracle.accuracy(k));
        }
    }

    match peak_rss_kib() {
        Some(kib) => eprintln!("[peak rss: {:.1} MiB]", kib as f64 / 1024.0),
        None => eprintln!("[peak rss: unavailable]"),
    }
    ExitCode::SUCCESS
}

//! `probe` — fast calibration dump: key predictor accuracies per benchmark
//! (no oracle analysis), for workload tuning.
//!
//! ```text
//! probe [--target N] [--seed N] [bench ...]
//! ```

use bp_predictors::{
    simulate, Gshare, GshareInterferenceFree, IdealStatic, Pas, PasInterferenceFree, Smith,
};
use bp_trace::{BranchProfile, TraceStats};
use bp_workloads::{Benchmark, WorkloadConfig};

fn main() {
    let mut cfg = WorkloadConfig::default().with_target(150_000);
    let mut picks: Vec<Benchmark> = Vec::new();
    let mut per_branch = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => {
                cfg.target_branches = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--target N");
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            "--per-branch" => per_branch = true,
            name => picks.push(name.parse().expect("benchmark name")),
        }
    }
    if picks.is_empty() {
        picks = Benchmark::ALL.to_vec();
    }

    if per_branch {
        use bp_predictors::simulate_per_branch;
        for b in &picks {
            let trace = b.generate(&cfg);
            let g = simulate_per_branch(&mut Gshare::new(16), &trace);
            let ig = simulate_per_branch(&mut GshareInterferenceFree::new(16), &trace);
            let p = simulate_per_branch(&mut Pas::default(), &trace);
            let mut rows: Vec<_> = g.iter().collect();
            rows.sort_by_key(|(pc, _)| *pc);
            println!(
                "== {} per-branch (pc, execs, gshare%, IFgshare%, pas%)",
                b.name()
            );
            for (pc, sg) in rows {
                let sig = ig.get(pc).unwrap();
                let sp = p.get(pc).unwrap();
                println!(
                    "{pc:#x} {:>8} {:>7.2} {:>7.2} {:>7.2}",
                    sg.predictions,
                    sg.accuracy() * 100.0,
                    sig.accuracy() * 100.0,
                    sp.accuracy() * 100.0
                );
            }
        }
        return;
    }

    println!(
        "{:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6}",
        "bench", "smith", "gshare", "IFgsh", "pas", "IFpas", "static", "taken", "dyn", "static#"
    );
    for b in picks {
        let trace = b.generate(&cfg);
        let stats = TraceStats::of(&trace);
        let profile = BranchProfile::of(&trace);
        let acc = |x: f64| format!("{:.2}", x * 100.0);
        println!(
            "{:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6}",
            b.name(),
            acc(simulate(&mut Smith::default(), &trace).accuracy()),
            acc(simulate(&mut Gshare::new(16), &trace).accuracy()),
            acc(simulate(&mut GshareInterferenceFree::new(16), &trace).accuracy()),
            acc(simulate(&mut Pas::default(), &trace).accuracy()),
            acc(simulate(&mut PasInterferenceFree::new(12), &trace).accuracy()),
            acc(simulate(&mut IdealStatic::from_profile(&profile), &trace).accuracy()),
            format!("{:.2}", stats.taken_rate() * 100.0),
            stats.dynamic_conditional,
            stats.static_conditional,
        );
    }
}

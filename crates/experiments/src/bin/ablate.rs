//! `ablate` — accuracy side of the design ablations (DESIGN.md §5):
//! oracle search strategy, tagging schemes, counter configuration, and
//! trace-length sensitivity.
//!
//! ```text
//! ablate [--target N] [--seed N]
//! ```

use bp_core::{OracleConfig, OracleSelector, OutcomeMatrix, SearchStrategy, TagCandidates};
use bp_predictors::{simulate, Gshare, SaturatingCounter};
use bp_trace::TagScheme;
use bp_workloads::{Benchmark, WorkloadConfig};

fn main() {
    let mut cfg = WorkloadConfig::default().with_target(60_000);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => {
                cfg.target_branches = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--target N")
            }
            "--seed" => cfg.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            other => panic!("unknown argument {other}"),
        }
    }
    let pct = |x: f64| format!("{:.2}", x * 100.0);

    // ---- 1. Oracle search strategy: greedy vs exhaustive --------------
    println!("## Ablation 1: oracle subset search (3-tag selective accuracy %)");
    println!("{:<10} {:>8} {:>11}", "bench", "greedy", "exhaustive");
    for b in [Benchmark::Gcc, Benchmark::Go, Benchmark::Perl] {
        let trace = b.generate(&cfg);
        let base = OracleConfig {
            candidate_cap: 14,
            ..OracleConfig::default()
        };
        let cands = TagCandidates::collect(&trace, base.window, base.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &cands, base.window);
        let greedy = OracleSelector::analyze_matrix(&matrix, &base);
        let exhaustive = OracleSelector::analyze_matrix(
            &matrix,
            &OracleConfig {
                search: SearchStrategy::Exhaustive { max_candidates: 14 },
                ..base
            },
        );
        println!(
            "{:<10} {:>8} {:>11}",
            b.name(),
            pct(greedy.accuracy(3)),
            pct(exhaustive.accuracy(3))
        );
    }

    // ---- 2. Tagging schemes (§3.2) -------------------------------------
    println!("\n## Ablation 2: instance tagging schemes (3-tag selective accuracy %)");
    println!(
        "{:<10} {:>11} {:>10} {:>6}",
        "bench", "occurrence", "iteration", "both"
    );
    for b in [Benchmark::M88ksim, Benchmark::Gcc, Benchmark::Xlisp] {
        let trace = b.generate(&cfg);
        let mut row = Vec::new();
        for schemes in [
            &[TagScheme::Occurrence][..],
            &[TagScheme::Iteration][..],
            &TagScheme::ALL[..],
        ] {
            let cands = TagCandidates::collect_with_schemes(&trace, 16, 32, schemes);
            let matrix = OutcomeMatrix::build(&trace, &cands, 16);
            let oracle = OracleSelector::analyze_matrix(&matrix, &OracleConfig::default());
            row.push(pct(oracle.accuracy(3)));
        }
        println!(
            "{:<10} {:>11} {:>10} {:>6}",
            b.name(),
            row[0],
            row[1],
            row[2]
        );
    }

    // ---- 3. Counter width / initialization -----------------------------
    println!("\n## Ablation 3: gshare counter configuration (accuracy %)");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>9} {:>9}",
        "bench", "1-bit", "2-bit", "3-bit", "2b-taken", "2b-ntaken"
    );
    for b in Benchmark::ALL {
        let trace = b.generate(&cfg);
        let mut cells = Vec::new();
        for counter in [
            SaturatingCounter::weakly_taken(1),
            SaturatingCounter::weakly_taken(2),
            SaturatingCounter::weakly_taken(3),
            SaturatingCounter::weakly_taken(2),
            SaturatingCounter::weakly_not_taken(2),
        ] {
            let mut p = Gshare::with_counter(16, counter);
            cells.push(pct(simulate(&mut p, &trace).accuracy()));
        }
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>9} {:>9}",
            b.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }

    // ---- 4. Hybrid selector sizing --------------------------------------
    println!("\n## Ablation 4: hybrid (gshare+PAs) selector table size (accuracy %)");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "bench", "sel=4", "sel=8", "sel=12", "sel=16", "best-comp"
    );
    {
        use bp_predictors::{Hybrid, Pas};
        for b in [
            Benchmark::Gcc,
            Benchmark::Go,
            Benchmark::Xlisp,
            Benchmark::Perl,
        ] {
            let trace = b.generate(&cfg);
            let mut cells = Vec::new();
            for bits in [4u32, 8, 12, 16] {
                let mut h = Hybrid::new(Gshare::new(16), Pas::default(), bits);
                cells.push(pct(simulate(&mut h, &trace).accuracy()));
            }
            let best = simulate(&mut Gshare::new(16), &trace)
                .accuracy()
                .max(simulate(&mut Pas::default(), &trace).accuracy());
            println!(
                "{:<10} {:>7} {:>7} {:>7} {:>7} {:>9}",
                b.name(),
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                pct(best)
            );
        }
    }

    // ---- 5. Trace-length sensitivity ------------------------------------
    println!("\n## Ablation 5: gshare accuracy vs trace length (%)");
    print!("{:<10}", "bench");
    let scales = [1usize, 2, 4];
    for s in scales {
        print!(" {:>9}", format!("x{s}"));
    }
    println!();
    for b in [Benchmark::Gcc, Benchmark::Go, Benchmark::Vortex] {
        print!("{:<10}", b.name());
        for s in scales {
            let t = b.generate(&cfg.with_target(cfg.target_branches * s));
            print!(
                " {:>9}",
                pct(simulate(&mut Gshare::default(), &t).accuracy())
            );
        }
        println!();
    }
}

//! Figure 9: the distribution of per-branch accuracy difference between
//! gshare and PAs, plotted against the percentile of dynamic branches.
//!
//! The paper plots gcc and perl (gcc representative of go, perl of the
//! rest); we compute the curve for every benchmark and report the
//! paper-quoted tail statistics.

use bp_core::PercentileCurve;
use bp_workloads::Benchmark;

use crate::render::{pp, Table};
use crate::{Engine, ExperimentConfig};

/// Percentile sampling resolution (the paper's x-axis runs 0..100 in 5s).
pub const STEPS: usize = 20;

/// One benchmark's accuracy-difference curve.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The full curve (gshare − PAs, percentage points).
    pub curve: PercentileCurve,
}

/// Full figure 9 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 9 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let gshare = engine.gshare(benchmark, cfg.gshare_bits);
        let pas = engine.pas_default(benchmark);
        Row {
            benchmark,
            curve: PercentileCurve::accuracy_difference(&gshare, &pas),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 9: gshare − PAs accuracy by percentile of dynamic branches (pp)",
            &[
                "benchmark",
                "p0",
                "p10",
                "p20",
                "p30",
                "p40",
                "p50",
                "p60",
                "p70",
                "p80",
                "p90",
                "p100",
            ],
        );
        for row in &self.rows {
            let mut cells = vec![row.benchmark.short_name().to_owned()];
            for i in 0..=10 {
                cells.push(pp(row.curve.value_at(i as f64 * 10.0)));
            }
            t.row(cells);
        }
        t.fmt(f)?;
        writeln!(f)?;
        let mut s = Table::new(
            "Figure 9 tails: what each side of the curve costs",
            &[
                "benchmark",
                "PAs better at p10 (pp)",
                "gshare better at p90 (pp)",
                "loss if gshare-only (pp)",
                "loss if PAs-only (pp)",
            ],
        );
        for row in &self.rows {
            s.row(vec![
                row.benchmark.short_name().to_owned(),
                pp(row.curve.value_at(10.0)),
                pp(row.curve.value_at(90.0)),
                format!("{:.2}", row.curve.loss_if_only_first()),
                format!("{:.2}", row.curve.loss_if_only_second()),
            ]);
        }
        s.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_and_render() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            let samples = row.curve.sample(STEPS);
            assert!(samples.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-9));
        }
        assert!(r.to_string().contains("p50"));
    }
}

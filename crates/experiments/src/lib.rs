//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the synthetic workloads.
//!
//! Each experiment is a module with a
//! `run(&ExperimentConfig, &Engine) -> …Result` function whose result
//! renders (via `Display`) the same rows/series the paper reports,
//! alongside the paper's own numbers where applicable. The shared
//! [`Engine`] fans work out across benchmarks and memoizes every artifact
//! two experiments would otherwise both compute (see [`engine`]). The
//! `repro` binary drives any subset:
//!
//! ```text
//! repro all            # every experiment
//! repro table2 fig4    # a subset
//! repro --quick fig6   # shorter traces
//! repro --jobs 4 all   # four worker threads (output identical to --jobs 1)
//! repro --timings t.json all   # machine-readable timings + cache stats
//! ```
//!
//! | id | paper artifact | module |
//! |---|---|---|
//! | `table1` | Table 1 — benchmark inventory | [`table1`] |
//! | `fig4` | Figure 4 — selective history vs gshare | [`fig4`] |
//! | `fig5` | Figure 5 — history-length sweep | [`fig5`] |
//! | `table2` | Table 2 — gshare w/ and w/o correlation | [`table2`] |
//! | `fig6` | Figure 6 — per-address class distribution | [`fig6`] |
//! | `table3` | Table 3 — PAs w/ and w/o loop predictor | [`table3`] |
//! | `fig7` | Figure 7 — best of gshare/PAs/static | [`fig7`] |
//! | `fig8` | Figure 8 — best of global/per-address/static | [`fig8`] |
//! | `fig9` | Figure 9 — gshare−PAs percentile curve | [`fig9`] |
//! | `hybrids` | extension — hybrid & related designs | [`ext_hybrids`] |
//! | `interference` | extension — PHT interference accounting | [`ext_interference`] |
//! | `distance` | extension — distance to correlated branches | [`ext_distance`] |
//! | `adaptivity` | extension — static vs adaptive PHTs | [`ext_adaptivity`] |
//! | `family` | extension — family sweeps vs history length | [`ext_family`] |
//! | `warmup` | extension — warmup curves & miss burstiness | [`ext_warmup`] |
//! | `modern` | extension — TAGE/perceptron per-class accuracy | [`modern`] |
//! | `charact` | extension — workload predictability characterization | [`charact`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod charact;
pub mod cli;
pub mod engine;
pub mod ext_adaptivity;
pub mod ext_distance;
pub mod ext_family;
pub mod ext_hybrids;
pub mod ext_interference;
pub mod ext_warmup;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod goldens;
pub mod modern;
pub mod render;
pub mod table1;
pub mod table2;
pub mod table3;

mod traceset;

pub use engine::{
    CacheStats, ClassifyPhaseStats, Engine, EvalCache, FanoutStats, OraclePhaseStats, PredictorKey,
};
pub use traceset::{TraceSet, TraceSetSource};

use bp_core::{ClassifierConfig, OracleConfig};
use bp_workloads::WorkloadConfig;

/// Shared configuration for all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Workload generation (seed, trace length).
    pub workload: WorkloadConfig,
    /// Oracle selective-history analysis settings (§3).
    pub oracle: OracleConfig,
    /// Per-address classification settings (§4).
    pub classifier: ClassifierConfig,
    /// gshare / interference-free gshare history length.
    pub gshare_bits: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            workload: WorkloadConfig::default(),
            oracle: OracleConfig::default(),
            classifier: ClassifierConfig::default(),
            gshare_bits: 16,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for smoke tests and `--quick` runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            workload: WorkloadConfig::default().with_target(40_000),
            ..ExperimentConfig::default()
        }
    }
}

/// A two-worker engine over `cfg`'s workload, for the module smoke tests
/// (two workers so the parallel fan-out path is exercised everywhere).
#[cfg(test)]
pub(crate) fn test_engine(cfg: &ExperimentConfig) -> Engine {
    Engine::new(TraceSet::new(cfg.workload), 2)
}

/// Runs one experiment by id and renders its result exactly as the
/// `repro` binary prints it (the `Display` output of the experiment's
/// result type; no trailing newline — callers add one, as `println!`
/// does).
///
/// This is the single dispatch point shared by `repro` and the `bp-serve`
/// evaluation service: both call through here, so a served response is
/// byte-identical to the corresponding `repro` stdout section by
/// construction. Returns `None` for an unknown id (the valid ids are
/// [`EXPERIMENT_IDS`]).
pub fn run_experiment(id: &str, cfg: &ExperimentConfig, engine: &Engine) -> Option<String> {
    let rendered = match id {
        "table1" => table1::run(cfg, engine).to_string(),
        "fig4" => fig4::run(cfg, engine).to_string(),
        "fig5" => fig5::run(cfg, engine).to_string(),
        "table2" => table2::run(cfg, engine).to_string(),
        "fig6" => fig6::run(cfg, engine).to_string(),
        "table3" => table3::run(cfg, engine).to_string(),
        "fig7" => fig7::run(cfg, engine).to_string(),
        "fig8" => fig8::run(cfg, engine).to_string(),
        "fig9" => fig9::run(cfg, engine).to_string(),
        "hybrids" => ext_hybrids::run(cfg, engine).to_string(),
        "interference" => ext_interference::run(cfg, engine).to_string(),
        "distance" => ext_distance::run(cfg, engine).to_string(),
        "adaptivity" => ext_adaptivity::run(cfg, engine).to_string(),
        "family" => ext_family::run(cfg, engine).to_string(),
        "warmup" => ext_warmup::run(cfg, engine).to_string(),
        "modern" => modern::run(cfg, engine).to_string(),
        "charact" => charact::run(cfg, engine).to_string(),
        _ => return None,
    };
    Some(rendered)
}

/// Identifiers of every reproducible experiment, in paper order, followed
/// by the extensions (hybrid study, interference accounting,
/// correlation-distance profile, adaptivity comparison, modern zoo,
/// workload characterization).
pub const EXPERIMENT_IDS: [&str; 17] = [
    "table1",
    "fig4",
    "fig5",
    "table2",
    "fig6",
    "table3",
    "fig7",
    "fig8",
    "fig9",
    "hybrids",
    "interference",
    "distance",
    "adaptivity",
    "family",
    "warmup",
    "modern",
    "charact",
];

//! On-disk reuse of `.bps` packed artifacts for paper-scale runs.
//!
//! A 100M–1B-branch run spends nearly all its generation time producing
//! two artifacts — the packed [`BranchStreams`] and the oracle's
//! [`OutcomeMatrix`] — that are pure functions of the workload
//! configuration. An [`ArtifactStore`] keeps them in a directory as
//! versioned `.bps` files (see [`bp_trace::bps`]), so a second run with
//! `scale --artifacts DIR` re-opens them through `mmap(2)` in
//! milliseconds instead of regenerating the trace.
//!
//! Rot handling mirrors the `.bpt2` disk cache: any typed open failure —
//! truncation, magic/version flip, fingerprint mismatch, lying plane
//! lengths — prints a one-line `notice:` to stderr, removes the rotten
//! file and its sidecar, and reports a miss so the caller rebuilds; a
//! simply-missing file is a silent miss. Saving is best-effort (a warning,
//! never a failure): an artifact store must never make a run less
//! reliable than running without one.

use std::path::{Path, PathBuf};

use bp_core::{open_matrix, write_matrix, OutcomeMatrix};
use bp_trace::bps::{open_streams, write_streams};
use bp_trace::sidecar::{fnv1a, Sidecar, FNV_OFFSET};
use bp_trace::BranchStreams;

/// A directory of reusable `.bps` artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

/// Config fingerprint of a streams artifact: the workload coordinates
/// that determine the trace, nothing else.
pub fn streams_config_fp(bench: &str, seed: u64, target: usize) -> u64 {
    let fp = fnv1a(FNV_OFFSET, bench.as_bytes());
    let fp = fnv1a(fp, &seed.to_le_bytes());
    fnv1a(fp, &(target as u64).to_le_bytes())
}

/// Config fingerprint of a matrix artifact: the workload coordinates plus
/// the oracle question (window, candidate cap; both tagging schemes are
/// implied — the `scale` pipeline always uses [`bp_trace::TagScheme::ALL`]).
pub fn matrix_config_fp(bench: &str, seed: u64, target: usize, window: usize, cap: usize) -> u64 {
    let fp = streams_config_fp(bench, seed, target);
    let fp = fnv1a(fp, &(window as u64).to_le_bytes());
    fnv1a(fp, &(cap as u64).to_le_bytes())
}

impl ArtifactStore {
    /// Opens (creating if needed) the artifact directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// Path of the streams artifact for `bench`.
    pub fn streams_path(&self, bench: &str) -> PathBuf {
        self.dir.join(format!("{bench}.streams.bps"))
    }

    /// Path of the matrix artifact for `bench` at one oracle config.
    pub fn matrix_path(&self, bench: &str, window: usize, cap: usize) -> PathBuf {
        self.dir.join(format!("{bench}.w{window}c{cap}.matrix.bps"))
    }

    /// Re-opens the streams artifact, or reports a miss. Returns the
    /// streams and whether their planes are kernel-mapped.
    pub fn load_streams(&self, bench: &str, config: u64) -> Option<(BranchStreams, bool)> {
        let path = self.streams_path(bench);
        if !path.exists() {
            return None;
        }
        match open_streams(&path, config) {
            Ok(o) => Some((o.streams, o.mapped)),
            Err(why) => {
                self.evict(&path, &why.to_string());
                None
            }
        }
    }

    /// Writes the streams artifact, best-effort.
    pub fn save_streams(&self, bench: &str, streams: &BranchStreams, config: u64) {
        let path = self.streams_path(bench);
        if let Err(e) = write_streams(&path, streams, config) {
            eprintln!("warning: could not save artifact {}: {e}", path.display());
        }
    }

    /// Re-opens the matrix artifact, or reports a miss. Returns the
    /// matrix and whether its planes are kernel-mapped.
    pub fn load_matrix(
        &self,
        bench: &str,
        window: usize,
        cap: usize,
        config: u64,
    ) -> Option<(OutcomeMatrix, bool)> {
        let path = self.matrix_path(bench, window, cap);
        if !path.exists() {
            return None;
        }
        match open_matrix(&path, config) {
            Ok(o) => Some((o.matrix, o.mapped)),
            Err(why) => {
                self.evict(&path, &why.to_string());
                None
            }
        }
    }

    /// Writes the matrix artifact, best-effort.
    pub fn save_matrix(
        &self,
        bench: &str,
        window: usize,
        cap: usize,
        matrix: &OutcomeMatrix,
        config: u64,
    ) {
        let path = self.matrix_path(bench, window, cap);
        if let Err(e) = write_matrix(&path, matrix, config) {
            eprintln!("warning: could not save artifact {}: {e}", path.display());
        }
    }

    /// One-line notice, then removal of the artifact and its sidecar so
    /// the rebuild starts clean.
    fn evict(&self, path: &Path, why: &str) {
        eprintln!("notice: regenerating artifact {} ({why})", path.display());
        std::fs::remove_file(path).ok();
        std::fs::remove_file(Sidecar::path_for(path)).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchRecord, Trace};

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("bp-artifacts-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(dir).expect("create store")
    }

    fn sample_streams() -> BranchStreams {
        let recs: Vec<BranchRecord> = (0..2000u64)
            .map(|i| BranchRecord::conditional(0x40 + (i % 9) * 4, i % 3 != 1))
            .collect();
        BranchStreams::of(&Trace::from_records(recs))
    }

    #[test]
    fn streams_round_trip_and_config_miss() {
        let store = temp_store("streams");
        let built = sample_streams();
        let fp = streams_config_fp("m88ksim", 1, 2000);
        assert!(store.load_streams("m88ksim", fp).is_none(), "cold store");
        store.save_streams("m88ksim", &built, fp);
        let (loaded, _) = store.load_streams("m88ksim", fp).expect("warm store");
        assert_eq!(loaded, built);
        // A different workload config is a miss that evicts the artifact.
        let other = streams_config_fp("m88ksim", 2, 2000);
        assert_ne!(fp, other);
        assert!(store.load_streams("m88ksim", other).is_none());
        assert!(
            !store.streams_path("m88ksim").exists(),
            "rotten artifact evicted"
        );
        std::fs::remove_dir_all(&store.dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_evicted_and_reported_as_miss() {
        let store = temp_store("corrupt");
        let fp = streams_config_fp("gcc", 7, 2000);
        store.save_streams("gcc", &sample_streams(), fp);
        let path = store.streams_path("gcc");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(store.load_streams("gcc", fp).is_none());
        assert!(!path.exists(), "rotten artifact evicted");
        assert!(!Sidecar::path_for(&path).exists(), "sidecar evicted too");
        std::fs::remove_dir_all(&store.dir).ok();
    }

    #[test]
    fn matrix_fingerprint_separates_oracle_configs() {
        let a = matrix_config_fp("go", 1, 1000, 16, 48);
        let b = matrix_config_fp("go", 1, 1000, 16, 12);
        let c = matrix_config_fp("go", 1, 1000, 8, 48);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}

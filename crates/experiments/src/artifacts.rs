//! On-disk reuse of `.bps` packed artifacts for paper-scale runs.
//!
//! A 100M–1B-branch run spends nearly all its generation time producing
//! two artifacts — the packed [`BranchStreams`] and the oracle's
//! [`OutcomeMatrix`] — that are pure functions of the workload
//! configuration. An [`ArtifactStore`] keeps them in a directory as
//! versioned `.bps` files (see [`bp_trace::bps`]), so a second run with
//! `scale --artifacts DIR` re-opens them through `mmap(2)` in
//! milliseconds instead of regenerating the trace.
//!
//! Rot handling mirrors the `.bpt2` disk cache: any typed open failure —
//! truncation, magic/version flip, fingerprint mismatch, lying plane
//! lengths — prints a one-line `notice:` to stderr, removes the rotten
//! file and its sidecar, and reports a miss so the caller rebuilds; a
//! simply-missing file is a silent miss. Saving is best-effort (a warning,
//! never a failure): an artifact store must never make a run less
//! reliable than running without one.

use std::path::{Path, PathBuf};

use bp_core::{open_matrix, write_matrix, OutcomeMatrix};
use bp_trace::bps::{open_streams, write_streams};
use bp_trace::sidecar::{fnv1a, Sidecar, FNV_OFFSET};
use bp_trace::BranchStreams;

/// A directory of reusable `.bps` artifacts, optionally capped at a
/// byte budget (artifact plus sidecar bytes). When a save pushes the
/// directory over budget, the least-recently-used artifacts — by
/// modification time, which loads refresh — are evicted with a one-line
/// notice until the store fits again. The artifact just written is
/// never evicted, even if it alone exceeds the budget: the run that
/// produced it gets to reuse it at least once.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    budget_bytes: Option<u64>,
}

/// Config fingerprint of a streams artifact: the workload coordinates
/// that determine the trace, nothing else.
pub fn streams_config_fp(bench: &str, seed: u64, target: usize) -> u64 {
    let fp = fnv1a(FNV_OFFSET, bench.as_bytes());
    let fp = fnv1a(fp, &seed.to_le_bytes());
    fnv1a(fp, &(target as u64).to_le_bytes())
}

/// Config fingerprint of a matrix artifact: the workload coordinates plus
/// the oracle question (window, candidate cap; both tagging schemes are
/// implied — the `scale` pipeline always uses [`bp_trace::TagScheme::ALL`]).
pub fn matrix_config_fp(bench: &str, seed: u64, target: usize, window: usize, cap: usize) -> u64 {
    let fp = streams_config_fp(bench, seed, target);
    let fp = fnv1a(fp, &(window as u64).to_le_bytes());
    fnv1a(fp, &(cap as u64).to_le_bytes())
}

impl ArtifactStore {
    /// Opens (creating if needed) the artifact directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore {
            dir,
            budget_bytes: None,
        })
    }

    /// Caps the store at `bytes` total (artifact + sidecar sizes);
    /// `None` removes the cap.
    #[must_use]
    pub fn with_budget(mut self, bytes: Option<u64>) -> ArtifactStore {
        self.budget_bytes = bytes;
        self
    }

    /// Path of the streams artifact for `bench`.
    pub fn streams_path(&self, bench: &str) -> PathBuf {
        self.dir.join(format!("{bench}.streams.bps"))
    }

    /// Path of the matrix artifact for `bench` at one oracle config.
    pub fn matrix_path(&self, bench: &str, window: usize, cap: usize) -> PathBuf {
        self.dir.join(format!("{bench}.w{window}c{cap}.matrix.bps"))
    }

    /// Re-opens the streams artifact, or reports a miss. Returns the
    /// streams and whether their planes are kernel-mapped.
    pub fn load_streams(&self, bench: &str, config: u64) -> Option<(BranchStreams, bool)> {
        let path = self.streams_path(bench);
        if !path.exists() {
            return None;
        }
        match open_streams(&path, config) {
            Ok(o) => {
                touch(&path);
                Some((o.streams, o.mapped))
            }
            Err(why) => {
                self.evict(&path, &why.to_string());
                None
            }
        }
    }

    /// Writes the streams artifact, best-effort.
    pub fn save_streams(&self, bench: &str, streams: &BranchStreams, config: u64) {
        let path = self.streams_path(bench);
        if let Err(e) = write_streams(&path, streams, config) {
            eprintln!("warning: could not save artifact {}: {e}", path.display());
        }
        self.enforce_budget(&path);
    }

    /// Re-opens the matrix artifact, or reports a miss. Returns the
    /// matrix and whether its planes are kernel-mapped.
    pub fn load_matrix(
        &self,
        bench: &str,
        window: usize,
        cap: usize,
        config: u64,
    ) -> Option<(OutcomeMatrix, bool)> {
        let path = self.matrix_path(bench, window, cap);
        if !path.exists() {
            return None;
        }
        match open_matrix(&path, config) {
            Ok(o) => {
                touch(&path);
                Some((o.matrix, o.mapped))
            }
            Err(why) => {
                self.evict(&path, &why.to_string());
                None
            }
        }
    }

    /// Writes the matrix artifact, best-effort.
    pub fn save_matrix(
        &self,
        bench: &str,
        window: usize,
        cap: usize,
        matrix: &OutcomeMatrix,
        config: u64,
    ) {
        let path = self.matrix_path(bench, window, cap);
        if let Err(e) = write_matrix(&path, matrix, config) {
            eprintln!("warning: could not save artifact {}: {e}", path.display());
        }
        self.enforce_budget(&path);
    }

    /// One-line notice, then removal of the artifact and its sidecar so
    /// the rebuild starts clean.
    fn evict(&self, path: &Path, why: &str) {
        eprintln!("notice: regenerating artifact {} ({why})", path.display());
        std::fs::remove_file(path).ok();
        std::fs::remove_file(Sidecar::path_for(path)).ok();
    }

    /// Evicts least-recently-used artifacts until the store fits its
    /// byte budget, sparing `just_written`. A no-op without a budget.
    fn enforce_budget(&self, just_written: &Path) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut artifacts: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total = 0u64;
        for entry in entries.flatten() {
            let path = entry.path();
            // Sidecars are billed to their artifact, not listed themselves.
            if path.extension().and_then(|e| e.to_str()) != Some("bps") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let sidecar = std::fs::metadata(Sidecar::path_for(&path))
                .map(|m| m.len())
                .unwrap_or(0);
            let bytes = meta.len() + sidecar;
            total += bytes;
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            artifacts.push((mtime, path, bytes));
        }
        // Oldest first; the path tiebreak keeps eviction order
        // deterministic on coarse-mtime filesystems.
        artifacts.sort();
        for (_, path, bytes) in artifacts {
            if total <= budget {
                break;
            }
            if path == just_written {
                continue;
            }
            eprintln!(
                "notice: artifact budget exceeded ({total} > {budget} bytes): evicting {}",
                path.display()
            );
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(Sidecar::path_for(&path)).ok();
            total = total.saturating_sub(bytes);
        }
    }
}

/// Refreshes an artifact's mtime so budget eviction is least-recently-
/// *used*, not least-recently-written. Best-effort: a store on a
/// read-only filesystem still loads fine.
fn touch(path: &Path) {
    let now = std::time::SystemTime::now();
    if let Ok(file) = std::fs::File::options().append(true).open(path) {
        let times = std::fs::FileTimes::new()
            .set_accessed(now)
            .set_modified(now);
        let _ = file.set_times(times);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchRecord, Trace};

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("bp-artifacts-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactStore::open(dir).expect("create store")
    }

    fn sample_streams() -> BranchStreams {
        let recs: Vec<BranchRecord> = (0..2000u64)
            .map(|i| BranchRecord::conditional(0x40 + (i % 9) * 4, i % 3 != 1))
            .collect();
        BranchStreams::of(&Trace::from_records(recs))
    }

    #[test]
    fn streams_round_trip_and_config_miss() {
        let store = temp_store("streams");
        let built = sample_streams();
        let fp = streams_config_fp("m88ksim", 1, 2000);
        assert!(store.load_streams("m88ksim", fp).is_none(), "cold store");
        store.save_streams("m88ksim", &built, fp);
        let (loaded, _) = store.load_streams("m88ksim", fp).expect("warm store");
        assert_eq!(loaded, built);
        // A different workload config is a miss that evicts the artifact.
        let other = streams_config_fp("m88ksim", 2, 2000);
        assert_ne!(fp, other);
        assert!(store.load_streams("m88ksim", other).is_none());
        assert!(
            !store.streams_path("m88ksim").exists(),
            "rotten artifact evicted"
        );
        std::fs::remove_dir_all(&store.dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_evicted_and_reported_as_miss() {
        let store = temp_store("corrupt");
        let fp = streams_config_fp("gcc", 7, 2000);
        store.save_streams("gcc", &sample_streams(), fp);
        let path = store.streams_path("gcc");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(store.load_streams("gcc", fp).is_none());
        assert!(!path.exists(), "rotten artifact evicted");
        assert!(!Sidecar::path_for(&path).exists(), "sidecar evicted too");
        std::fs::remove_dir_all(&store.dir).ok();
    }

    fn backdate(path: &Path, secs_ago: u64) {
        let then = std::time::SystemTime::now() - std::time::Duration::from_secs(secs_ago);
        let file = std::fs::File::options()
            .append(true)
            .open(path)
            .expect("open");
        file.set_times(
            std::fs::FileTimes::new()
                .set_accessed(then)
                .set_modified(then),
        )
        .expect("set mtime");
    }

    fn artifact_bytes(store: &ArtifactStore, bench: &str) -> u64 {
        let path = store.streams_path(bench);
        std::fs::metadata(&path).expect("artifact").len()
            + std::fs::metadata(Sidecar::path_for(&path))
                .map(|m| m.len())
                .unwrap_or(0)
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let store = temp_store("budget");
        let built = sample_streams();
        for bench in ["alpha", "beta", "gamma"] {
            store.save_streams(bench, &built, streams_config_fp(bench, 1, 2000));
        }
        // All three are the same size; budget fits exactly two.
        let one = artifact_bytes(&store, "alpha");
        let store = store.with_budget(Some(2 * one));
        backdate(&store.streams_path("alpha"), 300);
        backdate(&store.streams_path("beta"), 200);
        backdate(&store.streams_path("gamma"), 100);
        // Loading alpha refreshes its mtime, making beta the LRU victim
        // when the next save busts the budget.
        let fp = streams_config_fp("alpha", 1, 2000);
        assert!(store.load_streams("alpha", fp).is_some());
        store.save_streams("delta", &built, streams_config_fp("delta", 1, 2000));
        assert!(
            store.streams_path("alpha").exists(),
            "recently used survives"
        );
        assert!(!store.streams_path("beta").exists(), "LRU evicted");
        assert!(
            !Sidecar::path_for(&store.streams_path("beta")).exists(),
            "sidecar evicted with its artifact"
        );
        assert!(!store.streams_path("gamma").exists(), "next-LRU evicted");
        assert!(
            store.streams_path("delta").exists(),
            "just-written survives"
        );
        std::fs::remove_dir_all(&store.dir).ok();
    }

    #[test]
    fn just_written_artifact_survives_even_over_budget() {
        let store = temp_store("budget-tight").with_budget(Some(1));
        let built = sample_streams();
        store.save_streams("solo", &built, streams_config_fp("solo", 1, 2000));
        assert!(store.streams_path("solo").exists(), "newest never evicted");
        std::fs::remove_dir_all(&store.dir).ok();
    }

    #[test]
    fn no_budget_means_no_eviction() {
        let store = temp_store("no-budget");
        let built = sample_streams();
        for bench in ["a", "b", "c", "d"] {
            store.save_streams(bench, &built, streams_config_fp(bench, 1, 2000));
        }
        for bench in ["a", "b", "c", "d"] {
            assert!(store.streams_path(bench).exists());
        }
        std::fs::remove_dir_all(&store.dir).ok();
    }

    #[test]
    fn matrix_fingerprint_separates_oracle_configs() {
        let a = matrix_config_fp("go", 1, 1000, 16, 48);
        let b = matrix_config_fp("go", 1, 1000, 16, 12);
        let c = matrix_config_fp("go", 1, 1000, 8, 48);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}

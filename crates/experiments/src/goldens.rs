//! Golden snapshots of rendered experiment output.
//!
//! Every figure and table the `repro` driver can render is pinned by a
//! compact FNV-1a fingerprint of its exact output text at a recorded
//! (seed, target) configuration. The fingerprints live in a small text
//! file committed under `tests/goldens/`, so any change to an
//! experiment's numbers — an optimized kernel drifting from its
//! specification, a renderer reordering rows — shows up as a one-line
//! diff instead of a silent regression.
//!
//! The file format is line-oriented and diff-friendly:
//!
//! ```text
//! # bp-goldens v1 seed=247472536 target=40000
//! table1 89ab4c3f21d0e576
//! fig4 0f1e2d3c4b5a6978
//! ```
//!
//! Consumers: `repro --verify-goldens` / `--write-goldens`, and the
//! `bp-conformance sweep` golden suite.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::{run_experiment, Engine, ExperimentConfig, EXPERIMENT_IDS};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a fingerprint of one rendered experiment.
pub fn fingerprint(rendered: &str) -> u64 {
    rendered.bytes().fold(FNV_OFFSET, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// The committed goldens file: `tests/goldens/quick.fp` at the
/// workspace root, resolved relative to this crate's manifest so it
/// works from any working directory.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/quick.fp")
}

/// One experiment whose fingerprint disagrees with the goldens file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenMismatch {
    /// Experiment id (`table1`, `fig4`, ...).
    pub id: String,
    /// Fingerprint recorded in the goldens file, if present.
    pub expected: Option<u64>,
    /// Fingerprint of the freshly rendered output.
    pub actual: u64,
}

impl std::fmt::Display for GoldenMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.expected {
            Some(e) => write!(
                f,
                "{}: fingerprint {:016x} != golden {:016x}",
                self.id, self.actual, e
            ),
            None => write!(
                f,
                "{}: fingerprint {:016x} has no golden entry",
                self.id, self.actual
            ),
        }
    }
}

/// A parsed (or freshly captured) set of golden fingerprints together
/// with the workload configuration they were rendered at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goldens {
    /// Workload seed the fingerprints were captured with.
    pub seed: u64,
    /// `target_branches` the fingerprints were captured with.
    pub target: usize,
    entries: BTreeMap<String, u64>,
}

impl Goldens {
    /// An empty golden set for the given configuration.
    pub fn new(cfg: &ExperimentConfig) -> Self {
        Goldens {
            seed: cfg.workload.seed,
            target: cfg.workload.target_branches,
            entries: BTreeMap::new(),
        }
    }

    /// Renders every experiment through `engine` and fingerprints it.
    pub fn capture(cfg: &ExperimentConfig, engine: &Engine) -> Self {
        let mut goldens = Goldens::new(cfg);
        for id in EXPERIMENT_IDS {
            let rendered = run_experiment(id, cfg, engine).expect("EXPERIMENT_IDS is exhaustive");
            goldens.record(id, fingerprint(&rendered));
        }
        goldens
    }

    /// Adds (or replaces) one experiment's fingerprint.
    pub fn record(&mut self, id: &str, fp: u64) {
        self.entries.insert(id.to_owned(), fp);
    }

    /// The recorded fingerprint for `id`, if any.
    pub fn entry(&self, id: &str) -> Option<u64> {
        self.entries.get(id).copied()
    }

    /// Number of recorded fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no fingerprints are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `Err` with a human-readable explanation when `cfg` does not match
    /// the configuration the goldens were captured at.
    pub fn check_config(&self, cfg: &ExperimentConfig) -> Result<(), String> {
        if self.seed != cfg.workload.seed || self.target != cfg.workload.target_branches {
            return Err(format!(
                "goldens were captured at seed={} target={}, run is seed={} target={}",
                self.seed, self.target, cfg.workload.seed, cfg.workload.target_branches
            ));
        }
        Ok(())
    }

    /// Compares one rendered experiment against the recorded entry.
    pub fn verify(&self, id: &str, rendered: &str) -> Result<(), GoldenMismatch> {
        let actual = fingerprint(rendered);
        match self.entry(id) {
            Some(expected) if expected == actual => Ok(()),
            expected => Err(GoldenMismatch {
                id: id.to_owned(),
                expected,
                actual,
            }),
        }
    }

    /// Every disagreement between `self` (the committed goldens) and a
    /// freshly captured set, in `EXPERIMENT_IDS` order.
    pub fn diff(&self, fresh: &Goldens) -> Vec<GoldenMismatch> {
        EXPERIMENT_IDS
            .iter()
            .filter_map(|id| {
                let actual = fresh.entry(id)?;
                match self.entry(id) {
                    Some(expected) if expected == actual => None,
                    expected => Some(GoldenMismatch {
                        id: (*id).to_owned(),
                        expected,
                        actual,
                    }),
                }
            })
            .collect()
    }

    /// Parses the goldens file format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty goldens file")?;
        let rest = header
            .strip_prefix("# bp-goldens v1 ")
            .ok_or_else(|| format!("bad goldens header: {header:?}"))?;
        let mut seed = None;
        let mut target = None;
        for field in rest.split_whitespace() {
            if let Some(v) = field.strip_prefix("seed=") {
                seed = v.parse::<u64>().ok();
            } else if let Some(v) = field.strip_prefix("target=") {
                target = v.parse::<usize>().ok();
            }
        }
        let (seed, target) = match (seed, target) {
            (Some(s), Some(t)) => (s, t),
            _ => return Err(format!("bad goldens header: {header:?}")),
        };
        let mut entries = BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id, fp) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad goldens line: {line:?}"))?;
            let fp = u64::from_str_radix(fp.trim(), 16)
                .map_err(|_| format!("bad goldens fingerprint: {line:?}"))?;
            entries.insert(id.to_owned(), fp);
        }
        Ok(Goldens {
            seed,
            target,
            entries,
        })
    }

    /// Loads and parses a goldens file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read goldens {}: {e}", path.display()))?;
        Goldens::parse(&text)
    }

    /// Renders the goldens file format, entries in `EXPERIMENT_IDS`
    /// order (unknown ids last, alphabetically) for stable diffs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# bp-goldens v1 seed={} target={}\n",
            self.seed, self.target
        );
        for id in EXPERIMENT_IDS {
            if let Some(fp) = self.entry(id) {
                out.push_str(&format!("{id} {fp:016x}\n"));
            }
        }
        for (id, fp) in &self.entries {
            if !EXPERIMENT_IDS.contains(&id.as_str()) {
                out.push_str(&format!("{id} {fp:016x}\n"));
            }
        }
        out
    }

    /// Writes the rendered goldens file, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_fnv1a_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn render_parse_roundtrip() {
        let cfg = ExperimentConfig::quick();
        let mut g = Goldens::new(&cfg);
        g.record("table1", 0x1234);
        g.record("fig4", 0xdead_beef);
        let parsed = Goldens::parse(&g.render()).unwrap();
        assert_eq!(parsed, g);
        assert!(parsed.check_config(&cfg).is_ok());
        assert!(parsed.check_config(&ExperimentConfig::default()).is_err());
    }

    #[test]
    fn verify_and_diff_report_mismatches() {
        let cfg = ExperimentConfig::quick();
        let mut committed = Goldens::new(&cfg);
        committed.record("table1", fingerprint("stable output"));
        assert!(committed.verify("table1", "stable output").is_ok());
        let err = committed.verify("table1", "drifted output").unwrap_err();
        assert_eq!(err.expected, Some(fingerprint("stable output")));
        let err = committed.verify("fig4", "anything").unwrap_err();
        assert_eq!(err.expected, None);

        let mut fresh = Goldens::new(&cfg);
        fresh.record("table1", fingerprint("drifted output"));
        fresh.record("fig4", 7);
        let diff = committed.diff(&fresh);
        assert_eq!(diff.len(), 2);
        assert_eq!(diff[0].id, "table1");
        assert_eq!(diff[1].id, "fig4");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Goldens::parse("").is_err());
        assert!(Goldens::parse("nonsense\n").is_err());
        assert!(Goldens::parse("# bp-goldens v1 seed=1\n").is_err());
        assert!(Goldens::parse("# bp-goldens v1 seed=1 target=2\nbad-line\n").is_err());
        assert!(Goldens::parse("# bp-goldens v1 seed=1 target=2\nfig4 nothex\n").is_err());
    }
}

//! Extension: the hybrid-predictor study the paper's §5 motivates, plus
//! the related designs from its references — McFarling's chooser hybrid,
//! Chang et al.'s branch-classification hybrid \[1\], Seznec's skewed
//! predictor \[7\], Nair's path-based predictor \[3\], and the plain
//! GAg/PAg taxonomy corners.
//!
//! The headline check: the gshare+PAs hybrid captures (most of) the
//! per-branch best-of-both accuracy that figure 9 shows is available.

use bp_predictors::{simulate, ClassHybrid, Gag, Gshare, Gskew, Hybrid, Pag, Pas, PathBased};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's accuracy row across the predictor zoo (values 0..=1).
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Plain gshare (paper config).
    pub gshare: f64,
    /// Plain PAs.
    pub pas: f64,
    /// McFarling chooser hybrid of the two.
    pub hybrid: f64,
    /// Chang-style classification hybrid (static for biased branches).
    pub class_hybrid: f64,
    /// Seznec gskew at matching per-bank size.
    pub gskew: f64,
    /// Nair path-based predictor.
    pub path: f64,
    /// GAg (pure global, shared PHT).
    pub gag: f64,
    /// PAg (per-address histories, shared PHT).
    pub pag: f64,
}

/// Full extension result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the hybrid/related-designs comparison.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let trace = engine.trace(benchmark);
        let profile = engine.profile(benchmark);
        Row {
            benchmark,
            gshare: engine.gshare(benchmark, cfg.gshare_bits).total().accuracy(),
            pas: engine.pas_default(benchmark).total().accuracy(),
            hybrid: simulate(
                &mut Hybrid::new(Gshare::new(cfg.gshare_bits), Pas::default(), 12),
                &trace,
            )
            .accuracy(),
            class_hybrid: simulate(
                &mut ClassHybrid::new(Gshare::new(cfg.gshare_bits), &profile, 0.95),
                &trace,
            )
            .accuracy(),
            gskew: simulate(&mut Gskew::new(12, 12), &trace).accuracy(),
            path: simulate(&mut PathBased::default(), &trace).accuracy(),
            gag: simulate(&mut Gag::new(12), &trace).accuracy(),
            pag: simulate(&mut Pag::default(), &trace).accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Extension: hybrids and related designs (accuracy %)",
            &[
                "benchmark",
                "gshare",
                "PAs",
                "hybrid",
                "class-hyb",
                "gskew",
                "path",
                "GAg",
                "PAg",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct(row.gshare),
                pct(row.pas),
                pct(row.hybrid),
                pct(row.class_hybrid),
                pct(row.gskew),
                pct(row.path),
                pct(row.gag),
                pct(row.pag),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_tracks_best_component() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), 8);
        let mut hybrid_wins = 0;
        for row in &r.rows {
            let best = row.gshare.max(row.pas);
            assert!(row.hybrid > best - 0.02, "{row:?}");
            if row.hybrid >= best {
                hybrid_wins += 1;
            }
        }
        // On most benchmarks the hybrid should at least match the better
        // component outright.
        assert!(
            hybrid_wins >= 4,
            "hybrid only matched best on {hybrid_wins}/8"
        );
    }

    #[test]
    fn gag_never_beats_gshare_materially() {
        // GAg is strictly-more-aliased than gshare at equal size.
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            assert!(row.gag <= row.gshare + 0.03, "{row:?}");
        }
    }
}

//! Table 3: accuracy of PAs with and without a dedicated loop predictor
//! ("PAs w/ Loop"), plus the interference-free variants.
//!
//! Unlike Table 2's per-branch max, the paper's "PAs w/ Loop" is
//! *class-based*: the loop predictor serves every branch classified
//! loop-type (§4.1.1) and PAs serves all others.

use bp_core::{Classification, PaClass};
use bp_predictors::{PerBranchStats, PredictionStats};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// Paper Table 3 values (accuracy %), in [`Benchmark::ALL`] order:
/// (PAs, PAs w/ Loop, IF PAs, IF PAs w/ Loop).
pub const PAPER: [(f64, f64, f64, f64); 8] = [
    (93.46, 93.49, 94.41, 94.42),
    (92.08, 92.91, 91.86, 93.20),
    (82.16, 83.53, 84.81, 85.84),
    (94.87, 95.50, 95.86, 96.28),
    (98.58, 99.14, 99.09, 99.35),
    (96.83, 96.96, 97.79, 97.87),
    (98.86, 99.14, 99.03, 99.23),
    (95.46, 95.54, 96.70, 96.73),
];

/// One benchmark's Table 3 row (accuracies in 0..=1).
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Plain PAs.
    pub pas: f64,
    /// Loop predictor for loop-class branches, PAs elsewhere.
    pub pas_with_loop: f64,
    /// Interference-free PAs.
    pub if_pas: f64,
    /// Loop predictor for loop-class branches, IF PAs elsewhere.
    pub if_pas_with_loop: f64,
}

/// Full Table 3 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Combines a base predictor with the classification's loop predictor:
/// loop-class branches take the loop predictor's correct counts, everything
/// else keeps the base predictor's.
fn class_combined(base: &PerBranchStats, classification: &Classification) -> PredictionStats {
    let mut out = PredictionStats::default();
    for (pc, stats) in base.iter() {
        let correct = match classification.get(pc) {
            Some(scores) if scores.class() == PaClass::Loop => scores.loop_correct,
            _ => stats.correct,
        };
        out.merge(PredictionStats {
            predictions: stats.predictions,
            correct,
        });
    }
    out
}

/// Runs the Table 3 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let pas = engine.pas_default(benchmark);
        let if_pas = engine.if_pas(benchmark, cfg.classifier.pas_history_bits);
        let classification = engine.classification(benchmark, &cfg.classifier);
        Row {
            benchmark,
            pas: pas.total().accuracy(),
            pas_with_loop: class_combined(&pas, &classification).accuracy(),
            if_pas: if_pas.total().accuracy(),
            if_pas_with_loop: class_combined(&if_pas, &classification).accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Table 3: PAs accuracy w/ and w/o loop enhancement (measured | paper)",
            &["benchmark", "PAs", "PAs w/Loop", "IF PAs", "IF PAs w/Loop"],
        );
        for (row, paper) in self.rows.iter().zip(PAPER) {
            t.row(vec![
                row.benchmark.name().to_owned(),
                format!("{} | {:.2}", pct(row.pas), paper.0),
                format!("{} | {:.2}", pct(row.pas_with_loop), paper.1),
                format!("{} | {:.2}", pct(row.if_pas), paper.2),
                format!("{} | {:.2}", pct(row.if_pas_with_loop), paper.3),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_sane() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), 8);
        for row in &r.rows {
            assert!(row.pas > 0.5 && row.pas <= 1.0, "{row:?}");
            // The loop predictor only substitutes on branches where it was
            // classified best (vs *interference-free* PAs), so against
            // plain PAs a microscopic regression is possible but the
            // combination must not lose materially.
            assert!(row.pas_with_loop >= row.pas - 0.002, "{row:?}");
            assert!(row.if_pas_with_loop >= row.if_pas - 1e-12, "{row:?}");
        }
    }
}

//! Table 2: accuracy of gshare with and without the single strongest
//! correlation per branch ("gshare w/ Corr"), plus the interference-free
//! variants.
//!
//! "gshare w/ Corr" is the paper's hypothetical predictor that uses the
//! 1-tag selective history for the branches where it beats gshare and
//! gshare elsewhere — an a-posteriori per-branch max, showing how much
//! correlation gshare leaves unexploited (§3.6.3).

use bp_core::combined_correct;
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// Paper Table 2 values (accuracy %), in [`Benchmark::ALL`] order:
/// (gshare, gshare w/ Corr, IF gshare, IF gshare w/ Corr).
pub const PAPER: [(f64, f64, f64, f64); 8] = [
    (92.16, 92.40, 92.25, 92.41),
    (92.27, 95.95, 96.23, 96.73),
    (84.11, 88.54, 91.53, 92.14),
    (92.56, 93.12, 93.22, 93.31),
    (98.44, 98.58, 98.51, 98.59),
    (97.84, 98.29, 98.18, 98.34),
    (98.98, 99.29, 99.28, 99.32),
    (95.37, 95.52, 95.47, 95.52),
];

/// One benchmark's Table 2 row (accuracies in 0..=1).
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Plain gshare.
    pub gshare: f64,
    /// gshare with the strongest single correlation grafted on.
    pub gshare_with_corr: f64,
    /// Interference-free gshare.
    pub if_gshare: f64,
    /// Interference-free gshare with the strongest single correlation.
    pub if_gshare_with_corr: f64,
}

/// Full Table 2 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the Table 2 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let gshare = engine.gshare(benchmark, cfg.gshare_bits);
        let if_gshare = engine.if_gshare(benchmark, cfg.gshare_bits);
        let oracle = engine.oracle(benchmark, &cfg.oracle);
        let sel1 = oracle.selective_stats(1);
        Row {
            benchmark,
            gshare: gshare.total().accuracy(),
            gshare_with_corr: combined_correct(&gshare, &sel1).accuracy(),
            if_gshare: if_gshare.total().accuracy(),
            if_gshare_with_corr: combined_correct(&if_gshare, &sel1).accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Table 2: gshare accuracy w/ and w/o additional correlation (measured | paper)",
            &[
                "benchmark",
                "gshare",
                "gshare w/Corr",
                "IF gshare",
                "IF gshare w/Corr",
            ],
        );
        for (row, paper) in self.rows.iter().zip(PAPER) {
            t.row(vec![
                row.benchmark.name().to_owned(),
                format!("{} | {:.2}", pct(row.gshare), paper.0),
                format!("{} | {:.2}", pct(row.gshare_with_corr), paper.1),
                format!("{} | {:.2}", pct(row.if_gshare), paper.2),
                format!("{} | {:.2}", pct(row.if_gshare_with_corr), paper.3),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_hold_on_quick_run() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), 8);
        for row in &r.rows {
            // The combined predictor can never lose to its base.
            assert!(row.gshare_with_corr >= row.gshare, "{row:?}");
            assert!(row.if_gshare_with_corr >= row.if_gshare, "{row:?}");
            assert!(row.gshare > 0.5 && row.gshare <= 1.0, "{row:?}");
        }
        let text = r.to_string();
        assert!(text.contains("compress"));
    }
}

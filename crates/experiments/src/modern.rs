//! Modern zoo: TAGE and perceptron accuracy next to the 1998 predictors,
//! broken down by the paper's per-address predictability classes.
//!
//! The paper's §4 classes are predictor-agnostic, so they compose with
//! any predictor driven through the [`bp_predictors::Predictor`] trait.
//! This experiment asks the question the paper could not: how much of the
//! loop-exit and long-pattern predictability that a global-history
//! predictor leaves on the table (figure 6's Loop and pattern classes)
//! does a tagged geometric-history predictor recover, and how much does a
//! linear perceptron?
//!
//! The answer the synthetic workloads give: the interference-free PAs
//! idealization already captures Loop-class branches (short trip counts
//! fit its per-address history), so TAGE's recovery shows up against
//! *gshare* on loops, and against *both* 1998 predictors on the
//! Repeating-Pattern class, where neither a 16-bit uniform global window
//! nor 12 bits of per-address history spans the patterns that TAGE's
//! longest tables do.

use bp_core::PaClass;
use bp_predictors::PredictionStats;
use bp_workloads::Benchmark;

use crate::render::{pct, pp, Table};
use crate::{Engine, ExperimentConfig, PredictorKey};

/// Tagged-table count of the reference TAGE geometry (histories 4..32).
pub const TAGE_TABLES: u32 = 4;
/// Bimodal base index bits of the reference TAGE geometry.
pub const TAGE_BASE_BITS: u32 = 12;
/// Global history bits of the reference perceptron geometry.
pub const PERCEPTRON_BITS: u32 = 32;

/// Number of compared predictors (gshare, PAs, TAGE, perceptron).
pub const ZOO: usize = 4;

/// One benchmark's per-predictor, per-class accuracy decomposition.
#[derive(Debug, Clone)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Overall stats per predictor, in [`Result::labels`] order.
    pub overall: [PredictionStats; ZOO],
    /// Per-class stats: `per_class[class][predictor]`, classes in
    /// [`PaClass::ALL`] order.
    pub per_class: [[PredictionStats; ZOO]; 4],
}

/// Full modern-zoo comparison result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Predictor display labels, in column order.
    pub labels: [String; ZOO],
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the modern-zoo comparison.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let keys = [
        PredictorKey::Gshare {
            bits: cfg.gshare_bits,
        },
        PredictorKey::PasDefault,
        PredictorKey::Tage {
            tables: TAGE_TABLES,
            base_bits: TAGE_BASE_BITS,
        },
        PredictorKey::Perceptron {
            history_bits: PERCEPTRON_BITS,
        },
    ];
    let labels = [
        format!("gshare({})", cfg.gshare_bits),
        "pas(12,10,4)".to_owned(),
        format!(
            "tage({TAGE_TABLES},{},{TAGE_BASE_BITS})",
            4u32 << (TAGE_TABLES - 1)
        ),
        format!("perceptron({PERCEPTRON_BITS})"),
    ];
    let rows = engine.for_each_benchmark(|benchmark| {
        let classification = engine.classification(benchmark, &cfg.classifier);
        let stats: Vec<_> = keys
            .iter()
            .map(|&key| engine.per_branch(benchmark, key))
            .collect();
        let mut overall = [PredictionStats::default(); ZOO];
        let mut per_class = [[PredictionStats::default(); ZOO]; 4];
        for (pc, scores) in classification.iter() {
            let class = PaClass::ALL
                .iter()
                .position(|&c| c == scores.class())
                .expect("class in ALL");
            for (p, per_branch) in stats.iter().enumerate() {
                if let Some(s) = per_branch.get(pc) {
                    overall[p].merge(*s);
                    per_class[class][p].merge(*s);
                }
            }
        }
        Row {
            benchmark,
            overall,
            per_class,
        }
    });
    Result { labels, rows }
}

impl Result {
    /// Pools one class across every benchmark, per predictor.
    pub fn pooled_class(&self, class: usize) -> [PredictionStats; ZOO] {
        let mut pooled = [PredictionStats::default(); ZOO];
        for row in &self.rows {
            for (p, pool) in pooled.iter_mut().enumerate() {
                pool.merge(row.per_class[class][p]);
            }
        }
        pooled
    }

    /// TAGE minus gshare accuracy on the pooled Loop class, in percentage
    /// points — the headline number: loop-exit predictability that a
    /// uniform global history window misses and the geometric window
    /// recovers.
    pub fn tage_loop_gain_pp(&self) -> f64 {
        let loop_class = self.pooled_class(1);
        (loop_class[2].accuracy() - loop_class[0].accuracy()) * 100.0
    }

    /// TAGE minus the better 1998 predictor on the pooled
    /// Repeating-Pattern class, in percentage points — where the tagged
    /// geometric tables win outright.
    pub fn tage_pattern_gain_pp(&self) -> f64 {
        let class = self.pooled_class(2);
        let best_1998 = class[0].accuracy().max(class[1].accuracy());
        (class[2].accuracy() - best_1998) * 100.0
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let headers: Vec<&str> = std::iter::once("benchmark")
            .chain(self.labels.iter().map(String::as_str))
            .collect();
        let mut t = Table::new(
            "Modern zoo: overall accuracy (% of dynamic branches)",
            &headers,
        );
        for row in &self.rows {
            let mut cells = vec![row.benchmark.short_name().to_owned()];
            cells.extend(row.overall.iter().map(|s| pct(s.accuracy())));
            t.row(cells);
        }
        t.fmt(f)?;
        writeln!(f)?;

        let mut headers: Vec<&str> = std::iter::once("class")
            .chain(self.labels.iter().map(String::as_str))
            .collect();
        headers.push("dyn share");
        let mut t = Table::new(
            "Modern zoo: accuracy by predictability class (benchmarks pooled)",
            &headers,
        );
        let total_dynamic: u64 = (0..4).map(|c| self.pooled_class(c)[0].predictions).sum();
        for (c, class) in PaClass::ALL.iter().enumerate() {
            let pooled = self.pooled_class(c);
            let mut cells = vec![class.label().to_owned()];
            cells.extend(pooled.iter().map(|s| pct(s.accuracy())));
            cells.push(pct(
                pooled[0].predictions as f64 / total_dynamic.max(1) as f64
            ));
            t.row(cells);
        }
        t.fmt(f)?;
        writeln!(
            f,
            "\nTAGE - gshare on Loop-class branches: {} pp (loop-exit predictability the \
             geometric history window recovers)\nTAGE - best-of-1998 on Repeating-Pattern \
             branches: {} pp",
            pp(self.tage_loop_gain_pp()),
            pp(self.tage_pattern_gain_pp())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_decompose_overall_and_tage_recovers_loops() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.rows.len(), Benchmark::ALL.len());
        for row in &r.rows {
            for p in 0..ZOO {
                // Every dynamic branch lands in exactly one class, so the
                // class stats must partition the overall stats.
                let sum: u64 = (0..4).map(|c| row.per_class[c][p].predictions).sum();
                assert_eq!(sum, row.overall[p].predictions, "{:?}", row.benchmark);
                let correct: u64 = (0..4).map(|c| row.per_class[c][p].correct).sum();
                assert_eq!(correct, row.overall[p].correct, "{:?}", row.benchmark);
                let acc = row.overall[p].accuracy();
                assert!((0.0..=1.0).contains(&acc));
            }
            // All predictors scored the same dynamic branch population.
            for p in 1..ZOO {
                assert_eq!(row.overall[p].predictions, row.overall[0].predictions);
            }
        }
        // The headline: TAGE's long geometric history captures loop exits
        // that gshare's uniform 16-bit window misses...
        assert!(
            r.tage_loop_gain_pp() > 0.0,
            "tage loop gain {}",
            r.tage_loop_gain_pp()
        );
        // ...and beats both 1998 predictors outright on repeating
        // patterns longer than either of their histories.
        assert!(
            r.tage_pattern_gain_pp() > 1.0,
            "tage pattern gain {}",
            r.tage_pattern_gain_pp()
        );
    }
}

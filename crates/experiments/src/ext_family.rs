//! Extension: predictor-family history-length sweeps — the classic
//! Yeh-Patt-style curves. For the global family (GAg, GAs, gshare, gskew)
//! and the per-address family (PAg, PAs, IF-PAs), accuracy as a function
//! of history length on the hardest and the largest-footprint benchmarks.
//!
//! Together with figure 5 this separates two meanings of "more history":
//! the oracle's curve flattens past ~12 because the *information* is
//! nearby, while real predictors keep improving with history length
//! because longer histories also dilute interference.

use bp_predictors::{global_family, per_address_family, simulate};
use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// The swept history lengths.
pub const HISTORY_BITS: [u32; 4] = [4, 8, 12, 16];

/// Benchmarks swept (go: hardest; gcc: largest static footprint).
pub const BENCHMARKS: [Benchmark; 2] = [Benchmark::Go, Benchmark::Gcc];

/// One (benchmark, predictor) accuracy series over [`HISTORY_BITS`].
#[derive(Debug, Clone)]
pub struct Series {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Predictor display name at the smallest configuration.
    pub predictor: String,
    /// Accuracy per swept history length.
    pub accuracy: [f64; 4],
}

/// Full extension result.
#[derive(Debug, Clone)]
pub struct Result {
    /// All series, grouped by benchmark.
    pub series: Vec<Series>,
}

/// Runs the family sweep.
pub fn run(_cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let per_benchmark = engine.fan_out(&BENCHMARKS, |benchmark| {
        let trace = engine.trace(benchmark);
        let mut series: Vec<Series> = Vec::new();
        // Family constructors give a fresh set per history length; series
        // are grouped by position within the family vector.
        let family_sizes = [global_family(4).len(), per_address_family(4).len()];
        for (family_idx, family_size) in family_sizes.into_iter().enumerate() {
            for member in 0..family_size {
                let mut accuracy = [0f64; 4];
                let mut name = String::new();
                for (i, &bits) in HISTORY_BITS.iter().enumerate() {
                    let mut family = if family_idx == 0 {
                        global_family(bits)
                    } else {
                        per_address_family(bits)
                    };
                    let p = &mut family[member];
                    accuracy[i] = simulate(p.as_mut(), &trace).accuracy();
                    if i == 0 {
                        name = p.name();
                    }
                }
                series.push(Series {
                    benchmark,
                    predictor: name,
                    accuracy,
                });
            }
        }
        series
    });
    Result {
        series: per_benchmark.into_iter().flatten().collect(),
    }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for benchmark in BENCHMARKS {
            let mut t = Table::new(
                &format!(
                    "Extension: predictor families vs history length — {} (accuracy %)",
                    benchmark.name()
                ),
                &["predictor", "h=4", "h=8", "h=12", "h=16"],
            );
            for s in self.series.iter().filter(|s| s.benchmark == benchmark) {
                let mut cells = vec![s.predictor.clone()];
                cells.extend(s.accuracy.iter().map(|&a| pct(a)));
                t.row(cells);
            }
            t.fmt(f)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_sweep_shapes() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        assert_eq!(r.series.len(), BENCHMARKS.len() * 7);
        for s in &r.series {
            for &a in &s.accuracy {
                assert!((0.5..=1.0).contains(&a), "{s:?}");
            }
        }
        // Global predictors improve markedly with history (interference
        // relief + more correlation captured)...
        let gshare_go = r
            .series
            .iter()
            .find(|s| s.benchmark == Benchmark::Go && s.predictor.starts_with("gshare"))
            .expect("gshare series");
        assert!(gshare_go.accuracy[3] > gshare_go.accuracy[0] + 0.05);
        // ...while per-address predictors are far less history-hungry —
        // and can even *lose* accuracy to training fragmentation, so no
        // monotonicity is asserted, only that 4 bits already does well.
        let pas_go = r
            .series
            .iter()
            .find(|s| s.benchmark == Benchmark::Go && s.predictor.starts_with("pas"))
            .expect("pas series");
        assert!(pas_go.accuracy[0] > gshare_go.accuracy[0]);
    }
}

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use bp_trace::io::{self, ChunkWriter, FileTraceSource, TraceIoError};
use bp_trace::sidecar::{fnv1a, Sidecar, SidecarError, CONTENT_OFFSET, FNV_OFFSET};
use bp_trace::{BranchRecord, Trace, TraceSource};
use bp_workloads::{Benchmark, WorkloadConfig, WorkloadSource};

/// Lazily generated, cached traces for all benchmarks, shared across the
/// experiments of one run so each workload is generated once.
///
/// The set is accessed through `&self` (interior locking), so a single
/// pre-warmed instance can be shared read-only across worker threads —
/// the evaluation engine's per-benchmark fan-out depends on this.
/// [`TraceSet::trace`] hands out `Arc<Trace>` handles; the underlying
/// record buffer is never copied.
///
/// With [`TraceSet::with_disk_cache`], traces also persist across *runs*
/// as `.bpt` files (the `bp-trace` binary format), keyed by benchmark,
/// seed, and target length. Each cache file carries a `.fp` sidecar
/// recording the workload-config fingerprint and a content hash; a cached
/// trace is only trusted when both match and the decoded trace actually
/// meets the configured target length. Corrupt, tampered, stale, or
/// unreadable cache entries are regenerated with a one-line notice.
#[derive(Debug)]
pub struct TraceSet {
    cfg: WorkloadConfig,
    traces: RwLock<HashMap<Benchmark, Arc<Trace>>>,
    cache_dir: Option<PathBuf>,
    stream: bool,
}

impl TraceSet {
    /// Creates an empty set that will generate with `cfg`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        TraceSet {
            cfg,
            traces: RwLock::new(HashMap::new()),
            cache_dir: None,
            stream: false,
        }
    }

    /// As [`TraceSet::new`], persisting traces under `dir` (created on
    /// first write).
    pub fn with_disk_cache(cfg: WorkloadConfig, dir: impl Into<PathBuf>) -> Self {
        TraceSet {
            cfg,
            traces: RwLock::new(HashMap::new()),
            cache_dir: Some(dir.into()),
            stream: false,
        }
    }

    /// Switches the set to streaming mode: [`TraceSet::source`] never
    /// materializes a full trace. With a disk cache the workload is
    /// streamed once into a chunk-framed `.bpt2` file and scanned through
    /// a fixed-size read window afterwards; without one, every scan
    /// regenerates the workload chunk by chunk (determinism makes the
    /// generator its own storage). Peak memory per benchmark drops from
    /// the full record buffer to one chunk.
    pub fn with_streaming(mut self) -> Self {
        self.stream = true;
        self
    }

    /// Whether [`TraceSet::source`] avoids materializing traces.
    pub fn is_streaming(&self) -> bool {
        self.stream
    }

    /// The workload configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn cache_path(&self, benchmark: Benchmark) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:x}-{}.bpt",
                benchmark.name(),
                self.cfg.seed,
                self.cfg.target_branches
            ))
        })
    }

    /// Fingerprint of everything the generated trace depends on: the
    /// benchmark identity and the workload configuration.
    fn config_fingerprint(cfg: &WorkloadConfig, benchmark: Benchmark) -> u64 {
        let mut hash = fnv1a(FNV_OFFSET, benchmark.name().as_bytes());
        hash = fnv1a(hash, &cfg.seed.to_le_bytes());
        fnv1a(hash, &(cfg.target_branches as u64).to_le_bytes())
    }

    fn content_fingerprint(encoded: &[u8]) -> u64 {
        fnv1a(CONTENT_OFFSET, encoded)
    }

    #[cfg(test)]
    fn sidecar_path(path: &Path) -> PathBuf {
        Sidecar::path_for(path)
    }

    /// The one-line regeneration reason for a sidecar failure.
    fn sidecar_reason(e: SidecarError) -> &'static str {
        match e {
            SidecarError::Missing => "missing fingerprint sidecar",
            SidecarError::Malformed => "malformed fingerprint sidecar",
            SidecarError::WrongVersion => "unknown fingerprint sidecar version",
        }
    }

    /// Validates a cached `.bpt` against its sidecar and the current
    /// workload config; `Err` carries the one-line reason for the notice.
    fn validate_cached(
        cfg: &WorkloadConfig,
        benchmark: Benchmark,
        path: &Path,
    ) -> Result<Trace, &'static str> {
        let encoded = std::fs::read(path).map_err(|_| "unreadable")?;
        let sidecar = Sidecar::load(path).map_err(Self::sidecar_reason)?;
        if sidecar.config != Self::config_fingerprint(cfg, benchmark) {
            return Err("workload config fingerprint mismatch");
        }
        if sidecar.content != Self::content_fingerprint(&encoded) {
            return Err("content fingerprint mismatch");
        }
        let trace = io::read_trace(encoded.as_slice()).map_err(|_| "corrupt trace encoding")?;
        if trace.conditional_count() < cfg.target_branches {
            return Err("shorter than the configured target");
        }
        Ok(trace)
    }

    fn load_or_generate(
        cfg: &WorkloadConfig,
        benchmark: Benchmark,
        path: Option<&PathBuf>,
    ) -> Trace {
        if let Some(path) = path {
            match Self::validate_cached(cfg, benchmark, path) {
                Ok(trace) => return trace,
                Err("unreadable") => {} // first run: nothing cached yet
                Err(why) => eprintln!(
                    "notice: regenerating trace cache {} ({why})",
                    path.display()
                ),
            }
        }
        let trace = benchmark.generate(cfg);
        if let Some(path) = path {
            let write = || -> Result<(), io::TraceIoError> {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                let mut encoded = Vec::new();
                io::write_trace(&mut encoded, &trace)?;
                std::fs::write(path, &encoded)?;
                Sidecar {
                    config: Self::config_fingerprint(cfg, benchmark),
                    content: Self::content_fingerprint(&encoded),
                }
                .write(path)?;
                Ok(())
            };
            if let Err(e) = write() {
                eprintln!("warning: could not cache trace to {}: {e}", path.display());
            }
        }
        trace
    }

    /// The trace for `benchmark`, generating (or loading from the disk
    /// cache) on first use.
    ///
    /// Generation happens outside the lock so concurrent callers for
    /// *different* benchmarks proceed in parallel; if two threads race on
    /// the same benchmark, the first insertion wins (generation is
    /// deterministic, so both candidates are identical anyway).
    pub fn trace(&self, benchmark: Benchmark) -> Arc<Trace> {
        if let Some(t) = self.traces.read().expect("trace map lock").get(&benchmark) {
            return Arc::clone(t);
        }
        let path = self.cache_path(benchmark);
        let trace = Arc::new(Self::load_or_generate(&self.cfg, benchmark, path.as_ref()));
        let mut map = self.traces.write().expect("trace map lock");
        Arc::clone(map.entry(benchmark).or_insert(trace))
    }

    fn stream_path(&self, benchmark: Benchmark) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:x}-{}.bpt2",
                benchmark.name(),
                self.cfg.seed,
                self.cfg.target_branches
            ))
        })
    }

    /// Validates a cached `.bpt2` stream file against its sidecar
    /// (config fingerprint + total record count) and the file's own
    /// framing footer; `Err` carries the one-line reason for the notice.
    fn validate_stream_file(
        cfg: &WorkloadConfig,
        benchmark: Benchmark,
        path: &Path,
    ) -> Result<FileTraceSource, &'static str> {
        let sidecar = Sidecar::load(path).map_err(Self::sidecar_reason)?;
        if sidecar.config != Self::config_fingerprint(cfg, benchmark) {
            return Err("workload config fingerprint mismatch");
        }
        let source = FileTraceSource::open(path).map_err(|_| "corrupt stream file")?;
        if source.len() != sidecar.content {
            return Err("record count mismatch");
        }
        Ok(source)
    }

    /// Writes the benchmark's trace to `path` chunk by chunk (via a
    /// temporary file renamed into place) and opens it for windowed reads.
    /// Peak memory is one chunk; the full trace only ever exists on disk.
    fn write_stream_file(
        cfg: &WorkloadConfig,
        benchmark: Benchmark,
        path: &Path,
    ) -> Result<FileTraceSource, TraceIoError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let writer = ChunkWriter::new(std::io::BufWriter::new(std::fs::File::create(&tmp)?))?;
        let total = benchmark.generate_into(cfg, writer).finish()?;
        std::fs::rename(&tmp, path)?;
        Sidecar {
            config: Self::config_fingerprint(cfg, benchmark),
            content: total,
        }
        .write(path)?;
        FileTraceSource::open(path)
    }

    /// A replayable [`TraceSource`] for `benchmark`, choosing the cheapest
    /// backing that honors the set's memory policy:
    ///
    /// * a trace already materialized in memory is shared as-is;
    /// * in streaming mode with a disk cache, a chunk-framed `.bpt2` file
    ///   (written on first use, validated like the `.bpt` cache) is
    ///   scanned through a fixed-size read window;
    /// * in streaming mode without one, every scan regenerates the
    ///   workload chunk by chunk;
    /// * otherwise the trace is materialized (the pre-streaming behavior).
    pub fn source(&self, benchmark: Benchmark) -> TraceSetSource {
        if let Some(t) = self.traces.read().expect("trace map lock").get(&benchmark) {
            return TraceSetSource::Memory(Arc::clone(t));
        }
        if self.stream {
            if let Some(path) = self.stream_path(benchmark) {
                match Self::validate_stream_file(&self.cfg, benchmark, &path) {
                    Ok(source) => return TraceSetSource::File(Arc::new(source)),
                    Err("missing fingerprint sidecar") if !path.exists() => {}
                    Err(why) => eprintln!(
                        "notice: regenerating stream cache {} ({why})",
                        path.display()
                    ),
                }
                match Self::write_stream_file(&self.cfg, benchmark, &path) {
                    Ok(source) => return TraceSetSource::File(Arc::new(source)),
                    Err(e) => eprintln!(
                        "warning: could not stream trace to {}: {e}; \
                         falling back to regeneration per scan",
                        path.display()
                    ),
                }
            }
            return TraceSetSource::Workload(benchmark.source(self.cfg));
        }
        TraceSetSource::Memory(self.trace(benchmark))
    }

    /// Eagerly generates every benchmark, using up to `jobs` threads
    /// (a no-op win on single-core machines, a real one elsewhere).
    pub fn generate_all(&self, jobs: usize) {
        let jobs = jobs.max(1);
        let missing: Vec<Benchmark> = {
            let map = self.traces.read().expect("trace map lock");
            Benchmark::ALL
                .into_iter()
                .filter(|b| !map.contains_key(b))
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        if jobs == 1 {
            for b in missing {
                self.trace(b);
            }
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(missing.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match missing.get(i) {
                        Some(&b) => self.trace(b),
                        None => break,
                    };
                });
            }
        });
    }
}

/// A [`TraceSource`] handed out by [`TraceSet::source`]: an in-memory
/// trace, a windowed on-disk stream file, or the regenerating workload
/// itself. All three scan the identical record sequence.
#[derive(Debug, Clone)]
pub enum TraceSetSource {
    /// A fully materialized trace shared from the in-memory cache.
    Memory(Arc<Trace>),
    /// A chunk-framed `.bpt2` file scanned through a fixed-size window.
    File(Arc<FileTraceSource>),
    /// The deterministic workload generator, re-run on every scan.
    Workload(WorkloadSource),
}

impl TraceSource for TraceSetSource {
    fn scan(&self, f: &mut dyn FnMut(&[BranchRecord])) -> Result<(), TraceIoError> {
        match self {
            TraceSetSource::Memory(t) => t.scan(f),
            TraceSetSource::File(s) => s.scan(f),
            TraceSetSource::Workload(w) => w.scan(f),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match self {
            TraceSetSource::Memory(t) => TraceSource::len_hint(&**t),
            TraceSetSource::File(s) => TraceSource::len_hint(&**s),
            TraceSetSource::Workload(w) => w.len_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_is_deterministic() {
        let cfg = WorkloadConfig::default().with_target(2_000);
        let set = TraceSet::new(cfg);
        let a = set.trace(Benchmark::Compress);
        let b = set.trace(Benchmark::Compress);
        assert_eq!(a, b);
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must reuse the cached Arc"
        );
        assert_eq!(set.config().target_branches, 2_000);
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("bp-tracecache-{}", std::process::id()));
        let cfg = WorkloadConfig::default().with_target(1_500);

        let a = TraceSet::with_disk_cache(cfg, &dir);
        let first = a.trace(Benchmark::Compress);

        // A fresh set must load the identical trace from disk.
        let b = TraceSet::with_disk_cache(cfg, &dir);
        assert_eq!(b.trace(Benchmark::Compress), first);

        // Corrupt the cache file: the set regenerates instead of failing.
        let path = b.cache_path(Benchmark::Compress).expect("cache path");
        std::fs::write(&path, b"garbage").expect("overwrite cache");
        let c = TraceSet::with_disk_cache(cfg, &dir);
        assert_eq!(c.trace(Benchmark::Compress), first);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cache_rejects_tampered_and_unfingerprinted_entries() {
        let dir = std::env::temp_dir().join(format!("bp-tracecache-fp-{}", std::process::id()));
        let cfg = WorkloadConfig::default().with_target(1_200);

        let first = TraceSet::with_disk_cache(cfg, &dir).trace(Benchmark::Compress);
        let path = TraceSet::with_disk_cache(cfg, &dir)
            .cache_path(Benchmark::Compress)
            .expect("cache path");
        let sidecar = TraceSet::sidecar_path(&path);
        assert!(sidecar.exists(), "writing the cache must write the sidecar");

        // A *valid* but wrong trace swapped in without updating the
        // sidecar fails the content fingerprint and is regenerated.
        let imposter = Benchmark::Go.generate(&cfg);
        let mut encoded = Vec::new();
        io::write_trace(&mut encoded, &imposter).expect("encode imposter");
        std::fs::write(&path, &encoded).expect("swap cache content");
        assert_eq!(
            TraceSet::with_disk_cache(cfg, &dir).trace(Benchmark::Compress),
            first
        );

        // Regeneration rewrote both files; deleting the sidecar alone
        // also invalidates the entry.
        std::fs::remove_file(&sidecar).expect("drop sidecar");
        assert_eq!(
            TraceSet::with_disk_cache(cfg, &dir).trace(Benchmark::Compress),
            first
        );
        assert!(sidecar.exists(), "regeneration must restore the sidecar");

        // A config change (different target) must not trust the old
        // entry even though the content fingerprint still matches it —
        // the filename differs, so this lands in a fresh cache slot.
        let longer = WorkloadConfig::default().with_target(2_400);
        let grown = TraceSet::with_disk_cache(longer, &dir).trace(Benchmark::Compress);
        assert!(grown.conditional_count() >= 2_400);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cache_rejects_stale_config_fingerprints() {
        let dir = std::env::temp_dir().join(format!("bp-tracecache-stale-{}", std::process::id()));
        let cfg = WorkloadConfig::default().with_target(1_000);

        let set = TraceSet::with_disk_cache(cfg, &dir);
        let first = set.trace(Benchmark::Compress);
        let path = set.cache_path(Benchmark::Compress).expect("cache path");
        // Rewrite the sidecar with a bogus config fingerprint but a
        // correct content hash: the entry must be treated as stale.
        let encoded = std::fs::read(&path).expect("read cache");
        Sidecar {
            config: 0xdead_beef,
            content: TraceSet::content_fingerprint(&encoded),
        }
        .write(&path)
        .expect("forge sidecar");
        assert_eq!(
            TraceSet::with_disk_cache(cfg, &dir).trace(Benchmark::Compress),
            first
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    fn collect(src: &TraceSetSource) -> Vec<BranchRecord> {
        let mut recs = Vec::new();
        src.scan(&mut |chunk| recs.extend_from_slice(chunk))
            .expect("scan trace source");
        recs
    }

    #[test]
    fn streaming_sources_scan_identical_records() {
        let cfg = WorkloadConfig::default().with_target(1_000);
        let expect = TraceSet::new(cfg).trace(Benchmark::Compress);

        // Without a cache dir, streaming regenerates per scan — twice in a
        // row to prove the source is replayable.
        let regen = TraceSet::new(cfg).with_streaming();
        assert!(regen.is_streaming());
        let src = regen.source(Benchmark::Compress);
        assert!(matches!(src, TraceSetSource::Workload(_)));
        assert_eq!(collect(&src), expect.records());
        assert_eq!(collect(&src), expect.records());

        // A materialized trace is shared as-is, even in streaming mode.
        let warm = TraceSet::new(cfg).with_streaming();
        let _ = warm.trace(Benchmark::Compress);
        assert!(matches!(
            warm.source(Benchmark::Compress),
            TraceSetSource::Memory(_)
        ));
    }

    #[test]
    fn streaming_disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("bp-streamcache-{}", std::process::id()));
        let cfg = WorkloadConfig::default().with_target(1_000);
        let expect = TraceSet::new(cfg).trace(Benchmark::Compress);

        let disk = TraceSet::with_disk_cache(cfg, &dir).with_streaming();
        let src = disk.source(Benchmark::Compress);
        assert!(matches!(src, TraceSetSource::File(_)));
        assert_eq!(collect(&src), expect.records());
        assert_eq!(
            TraceSource::len_hint(&src),
            Some(expect.records().len() as u64)
        );

        // A fresh set revalidates and reuses the cached stream file.
        let again = TraceSet::with_disk_cache(cfg, &dir).with_streaming();
        let src = again.source(Benchmark::Compress);
        assert!(matches!(src, TraceSetSource::File(_)));
        assert_eq!(collect(&src), expect.records());

        // Corrupting the file forces a rewrite, not a failure.
        let path = again.stream_path(Benchmark::Compress).expect("stream path");
        std::fs::write(&path, b"garbage").expect("overwrite stream cache");
        let fresh = TraceSet::with_disk_cache(cfg, &dir).with_streaming();
        assert_eq!(
            collect(&fresh.source(Benchmark::Compress)),
            expect.records()
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_all_covers_every_benchmark() {
        let cfg = WorkloadConfig::default().with_target(500);
        let set = TraceSet::new(cfg);
        set.generate_all(4);
        for b in Benchmark::ALL {
            assert!(set.trace(b).conditional_count() >= 500);
        }
    }

    #[test]
    fn shared_access_from_threads_yields_one_trace() {
        let cfg = WorkloadConfig::default().with_target(800);
        let set = TraceSet::new(cfg);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| set.trace(Benchmark::Go)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert_eq!(**t, *traces[0]);
        }
    }
}

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

use bp_trace::{io, Trace};
use bp_workloads::{Benchmark, WorkloadConfig};

/// Lazily generated, cached traces for all benchmarks, shared across the
/// experiments of one run so each workload is generated once.
///
/// The set is accessed through `&self` (interior locking), so a single
/// pre-warmed instance can be shared read-only across worker threads —
/// the evaluation engine's per-benchmark fan-out depends on this.
/// [`TraceSet::trace`] hands out `Arc<Trace>` handles; the underlying
/// record buffer is never copied.
///
/// With [`TraceSet::with_disk_cache`], traces also persist across *runs*
/// as `.bpt` files (the `bp-trace` binary format), keyed by benchmark,
/// seed, and target length; corrupt or unreadable cache files are ignored
/// and regenerated.
#[derive(Debug)]
pub struct TraceSet {
    cfg: WorkloadConfig,
    traces: RwLock<HashMap<Benchmark, Arc<Trace>>>,
    cache_dir: Option<PathBuf>,
}

impl TraceSet {
    /// Creates an empty set that will generate with `cfg`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        TraceSet {
            cfg,
            traces: RwLock::new(HashMap::new()),
            cache_dir: None,
        }
    }

    /// As [`TraceSet::new`], persisting traces under `dir` (created on
    /// first write).
    pub fn with_disk_cache(cfg: WorkloadConfig, dir: impl Into<PathBuf>) -> Self {
        TraceSet {
            cfg,
            traces: RwLock::new(HashMap::new()),
            cache_dir: Some(dir.into()),
        }
    }

    /// The workload configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn cache_path(&self, benchmark: Benchmark) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:x}-{}.bpt",
                benchmark.name(),
                self.cfg.seed,
                self.cfg.target_branches
            ))
        })
    }

    fn load_or_generate(
        cfg: &WorkloadConfig,
        benchmark: Benchmark,
        path: Option<&PathBuf>,
    ) -> Trace {
        if let Some(path) = path {
            if let Ok(file) = std::fs::File::open(path) {
                if let Ok(trace) = io::read_trace(std::io::BufReader::new(file)) {
                    return trace;
                }
                eprintln!("warning: ignoring corrupt trace cache {}", path.display());
            }
        }
        let trace = benchmark.generate(cfg);
        if let Some(path) = path {
            let write = || -> Result<(), io::TraceIoError> {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                let file = std::fs::File::create(path)?;
                let mut writer = std::io::BufWriter::new(file);
                io::write_trace(&mut writer, &trace)?;
                std::io::Write::flush(&mut writer)?;
                Ok(())
            };
            if let Err(e) = write() {
                eprintln!("warning: could not cache trace to {}: {e}", path.display());
            }
        }
        trace
    }

    /// The trace for `benchmark`, generating (or loading from the disk
    /// cache) on first use.
    ///
    /// Generation happens outside the lock so concurrent callers for
    /// *different* benchmarks proceed in parallel; if two threads race on
    /// the same benchmark, the first insertion wins (generation is
    /// deterministic, so both candidates are identical anyway).
    pub fn trace(&self, benchmark: Benchmark) -> Arc<Trace> {
        if let Some(t) = self.traces.read().expect("trace map lock").get(&benchmark) {
            return Arc::clone(t);
        }
        let path = self.cache_path(benchmark);
        let trace = Arc::new(Self::load_or_generate(&self.cfg, benchmark, path.as_ref()));
        let mut map = self.traces.write().expect("trace map lock");
        Arc::clone(map.entry(benchmark).or_insert(trace))
    }

    /// Eagerly generates every benchmark, using up to `jobs` threads
    /// (a no-op win on single-core machines, a real one elsewhere).
    pub fn generate_all(&self, jobs: usize) {
        let jobs = jobs.max(1);
        let missing: Vec<Benchmark> = {
            let map = self.traces.read().expect("trace map lock");
            Benchmark::ALL
                .into_iter()
                .filter(|b| !map.contains_key(b))
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        if jobs == 1 {
            for b in missing {
                self.trace(b);
            }
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(missing.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match missing.get(i) {
                        Some(&b) => self.trace(b),
                        None => break,
                    };
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_is_deterministic() {
        let cfg = WorkloadConfig::default().with_target(2_000);
        let set = TraceSet::new(cfg);
        let a = set.trace(Benchmark::Compress);
        let b = set.trace(Benchmark::Compress);
        assert_eq!(a, b);
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must reuse the cached Arc"
        );
        assert_eq!(set.config().target_branches, 2_000);
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("bp-tracecache-{}", std::process::id()));
        let cfg = WorkloadConfig::default().with_target(1_500);

        let a = TraceSet::with_disk_cache(cfg, &dir);
        let first = a.trace(Benchmark::Compress);

        // A fresh set must load the identical trace from disk.
        let b = TraceSet::with_disk_cache(cfg, &dir);
        assert_eq!(b.trace(Benchmark::Compress), first);

        // Corrupt the cache file: the set regenerates instead of failing.
        let path = b.cache_path(Benchmark::Compress).expect("cache path");
        std::fs::write(&path, b"garbage").expect("overwrite cache");
        let c = TraceSet::with_disk_cache(cfg, &dir);
        assert_eq!(c.trace(Benchmark::Compress), first);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_all_covers_every_benchmark() {
        let cfg = WorkloadConfig::default().with_target(500);
        let set = TraceSet::new(cfg);
        set.generate_all(4);
        for b in Benchmark::ALL {
            assert!(set.trace(b).conditional_count() >= 500);
        }
    }

    #[test]
    fn shared_access_from_threads_yields_one_trace() {
        let cfg = WorkloadConfig::default().with_target(800);
        let set = TraceSet::new(cfg);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| set.trace(Benchmark::Go)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert_eq!(**t, *traces[0]);
        }
    }
}

use std::collections::HashMap;
use std::path::PathBuf;

use bp_trace::{io, Trace};
use bp_workloads::{Benchmark, WorkloadConfig};

/// Lazily generated, cached traces for all benchmarks, shared across the
/// experiments of one run so each workload is generated once.
///
/// With [`TraceSet::with_disk_cache`], traces also persist across *runs*
/// as `.bpt` files (the `bp-trace` binary format), keyed by benchmark,
/// seed, and target length; corrupt or unreadable cache files are ignored
/// and regenerated.
#[derive(Debug)]
pub struct TraceSet {
    cfg: WorkloadConfig,
    traces: HashMap<Benchmark, Trace>,
    cache_dir: Option<PathBuf>,
}

impl TraceSet {
    /// Creates an empty set that will generate with `cfg`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        TraceSet {
            cfg,
            traces: HashMap::new(),
            cache_dir: None,
        }
    }

    /// As [`TraceSet::new`], persisting traces under `dir` (created on
    /// first write).
    pub fn with_disk_cache(cfg: WorkloadConfig, dir: impl Into<PathBuf>) -> Self {
        TraceSet {
            cfg,
            traces: HashMap::new(),
            cache_dir: Some(dir.into()),
        }
    }

    /// The workload configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn cache_path(&self, benchmark: Benchmark) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:x}-{}.bpt",
                benchmark.name(),
                self.cfg.seed,
                self.cfg.target_branches
            ))
        })
    }

    fn load_or_generate(cfg: &WorkloadConfig, benchmark: Benchmark, path: Option<&PathBuf>) -> Trace {
        if let Some(path) = path {
            if let Ok(file) = std::fs::File::open(path) {
                if let Ok(trace) = io::read_trace(std::io::BufReader::new(file)) {
                    return trace;
                }
                eprintln!("warning: ignoring corrupt trace cache {}", path.display());
            }
        }
        let trace = benchmark.generate(cfg);
        if let Some(path) = path {
            let write = || -> Result<(), io::TraceIoError> {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                let file = std::fs::File::create(path)?;
                let mut writer = std::io::BufWriter::new(file);
                io::write_trace(&mut writer, &trace)?;
                std::io::Write::flush(&mut writer)?;
                Ok(())
            };
            if let Err(e) = write() {
                eprintln!("warning: could not cache trace to {}: {e}", path.display());
            }
        }
        trace
    }

    /// The trace for `benchmark`, generating (or loading from the disk
    /// cache) on first use. Clones are cheap (shared storage).
    pub fn trace(&mut self, benchmark: Benchmark) -> Trace {
        if let Some(t) = self.traces.get(&benchmark) {
            return t.clone();
        }
        let path = self.cache_path(benchmark);
        let trace = Self::load_or_generate(&self.cfg, benchmark, path.as_ref());
        self.traces.insert(benchmark, trace.clone());
        trace
    }

    /// Eagerly generates every benchmark, using one thread per benchmark
    /// (a no-op win on single-core machines, a real one elsewhere).
    pub fn generate_all(&mut self) {
        let cfg = self.cfg;
        let missing: Vec<(Benchmark, Option<PathBuf>)> = Benchmark::ALL
            .into_iter()
            .filter(|b| !self.traces.contains_key(b))
            .map(|b| (b, self.cache_path(b)))
            .collect();
        let generated: Vec<(Benchmark, Trace)> = std::thread::scope(|scope| {
            let handles: Vec<_> = missing
                .iter()
                .map(|(b, path)| {
                    scope.spawn(move || (*b, Self::load_or_generate(&cfg, *b, path.as_ref())))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("workload generation does not panic"))
                .collect()
        });
        self.traces.extend(generated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_is_deterministic() {
        let cfg = WorkloadConfig::default().with_target(2_000);
        let mut set = TraceSet::new(cfg);
        let a = set.trace(Benchmark::Compress);
        let b = set.trace(Benchmark::Compress);
        assert_eq!(a, b);
        assert_eq!(set.config().target_branches, 2_000);
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("bp-tracecache-{}", std::process::id()));
        let cfg = WorkloadConfig::default().with_target(1_500);

        let mut a = TraceSet::with_disk_cache(cfg, &dir);
        let first = a.trace(Benchmark::Compress);

        // A fresh set must load the identical trace from disk.
        let mut b = TraceSet::with_disk_cache(cfg, &dir);
        assert_eq!(b.trace(Benchmark::Compress), first);

        // Corrupt the cache file: the set regenerates instead of failing.
        let path = b.cache_path(Benchmark::Compress).expect("cache path");
        std::fs::write(&path, b"garbage").expect("overwrite cache");
        let mut c = TraceSet::with_disk_cache(cfg, &dir);
        assert_eq!(c.trace(Benchmark::Compress), first);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_all_covers_every_benchmark() {
        let cfg = WorkloadConfig::default().with_target(500);
        let mut set = TraceSet::new(cfg);
        set.generate_all();
        for b in Benchmark::ALL {
            assert!(set.trace(b).conditional_count() >= 500);
        }
    }
}

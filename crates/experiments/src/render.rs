//! Plain-text rendering of experiment results: fixed-width tables and
//! simple line-series blocks, mirroring the paper's tables and figures.

use std::fmt;

/// A fixed-width text table.
///
/// # Example
///
/// ```
/// use bp_experiments::render::Table;
///
/// let mut t = Table::new("Demo", &["bench", "acc"]);
/// t.row(vec!["gcc".into(), "92.27".into()]);
/// let s = t.to_string();
/// assert!(s.contains("gcc"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                write!(f, " {cell:>width$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Renders one row of an ASCII stacked bar chart: `label |aaaabbbcc|`,
/// with each segment's share of `width` proportional to its fraction.
/// Fractions are clamped to `[0, 1]`; rounding error lands on the last
/// segment so the bar width is exact.
///
/// # Example
///
/// ```
/// use bp_experiments::render::stacked_bar;
///
/// let bar = stacked_bar("gcc", &[('G', 0.25), ('S', 0.5), ('P', 0.25)], 20);
/// assert_eq!(bar, "gcc        |GGGGGSSSSSSSSSSPPPPP|");
/// ```
pub fn stacked_bar(label: &str, segments: &[(char, f64)], width: usize) -> String {
    let mut bar = String::with_capacity(width + label.len() + 3);
    bar.push_str(&format!("{label:<10} |"));
    let mut used = 0usize;
    for (i, &(ch, fraction)) in segments.iter().enumerate() {
        let cells = if i + 1 == segments.len() {
            width.saturating_sub(used)
        } else {
            ((fraction.clamp(0.0, 1.0) * width as f64).round() as usize)
                .min(width.saturating_sub(used))
        };
        for _ in 0..cells {
            bar.push(ch);
        }
        used += cells;
    }
    bar.push('|');
    bar
}

/// Formats an accuracy (0..=1) as a percentage with two decimals, the
/// paper's convention.
pub fn pct(accuracy: f64) -> String {
    format!("{:.2}", accuracy * 100.0)
}

/// Formats a fraction (0..=1) as a whole-number percentage.
pub fn pct0(fraction: f64) -> String {
    format!("{:.0}", fraction * 100.0)
}

/// Formats a signed percentage-point value with one decimal.
pub fn pp(value: f64) -> String {
    format!("{value:+.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_content() {
        let mut t = Table::new("T", &["a", "benchmark"]);
        t.row(vec!["1".into(), "compress".into()]);
        t.row(vec!["22".into()]);
        let s = t.to_string();
        assert!(s.contains("## T"));
        assert!(s.contains("compress"));
        assert!(s.lines().count() >= 4);
        // All data lines have equal width.
        let widths: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn stacked_bar_is_exact_width() {
        for width in [10usize, 33, 50] {
            let bar = stacked_bar("x", &[('a', 0.3), ('b', 0.3), ('c', 0.4)], width);
            let inner = bar.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), width, "{bar}");
        }
        // Degenerate fractions clamp instead of panicking.
        let bar = stacked_bar("y", &[('a', 1.5), ('b', -0.2)], 8);
        assert_eq!(bar.split('|').nth(1).unwrap().len(), 8);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.92163), "92.16");
        assert_eq!(pct0(0.55), "55");
        assert_eq!(pp(3.71), "+3.7");
        assert_eq!(pp(-0.25), "-0.2");
    }
}

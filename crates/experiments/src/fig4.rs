//! Figure 4: prediction accuracy of selective histories of 1/2/3 branches
//! vs interference-free gshare and plain gshare, per benchmark.
//!
//! The paper's headline: a 3-branch selective history approaches IF-gshare
//! — the other 13 outcomes in a 16-deep history contribute mostly noise.

use bp_workloads::Benchmark;

use crate::render::{pct, Table};
use crate::{Engine, ExperimentConfig};

/// One benchmark's figure 4 series (accuracies in 0..=1).
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// 1/2/3-tag selective-history accuracy.
    pub selective: [f64; 3],
    /// Interference-free gshare accuracy.
    pub if_gshare: f64,
    /// Plain gshare accuracy.
    pub gshare: f64,
}

/// Full figure 4 result.
#[derive(Debug, Clone)]
pub struct Result {
    /// One row per benchmark, in [`Benchmark::ALL`] order.
    pub rows: Vec<Row>,
}

/// Runs the figure 4 experiment.
pub fn run(cfg: &ExperimentConfig, engine: &Engine) -> Result {
    let rows = engine.for_each_benchmark(|benchmark| {
        let oracle = engine.oracle(benchmark, &cfg.oracle);
        Row {
            benchmark,
            selective: [oracle.accuracy(1), oracle.accuracy(2), oracle.accuracy(3)],
            if_gshare: engine
                .if_gshare(benchmark, cfg.gshare_bits)
                .total()
                .accuracy(),
            gshare: engine.gshare(benchmark, cfg.gshare_bits).total().accuracy(),
        }
    });
    Result { rows }
}

impl std::fmt::Display for Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Figure 4: selective history vs gshare and interference-free gshare (accuracy %)",
            &[
                "benchmark",
                "IF 1-branch",
                "IF 2-branch",
                "IF 3-branch",
                "IF gshare",
                "gshare",
            ],
        );
        for row in &self.rows {
            t.row(vec![
                row.benchmark.short_name().to_owned(),
                pct(row.selective[0]),
                pct(row.selective[1]),
                pct(row.selective[2]),
                pct(row.if_gshare),
                pct(row.gshare),
            ]);
        }
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_monotone_and_plot_renders() {
        let cfg = ExperimentConfig::quick();
        let r = run(&cfg, &crate::test_engine(&cfg));
        for row in &r.rows {
            assert!(row.selective[0] <= row.selective[1] + 1e-12);
            assert!(row.selective[1] <= row.selective[2] + 1e-12);
        }
        assert!(r.to_string().contains("IF 3-branch"));
    }
}

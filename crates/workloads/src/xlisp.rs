//! `xlisp` analog: a recursive s-expression evaluator over generated
//! programs.
//!
//! Branch profile: recursion makes the *path* to a branch matter — the same
//! atom-vs-cons test behaves differently under `(+ …)` than under `(if …)`,
//! the in-path correlation of §3.1 (a branch at the start of a subroutine
//! depends on where it was called from). Environment-lookup probes and a
//! periodic GC check round out the mix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0080_0000;

const PC_IS_ATOM: Pc = BASE;
const PC_IS_NUMBER: Pc = BASE + 0x9e4;
const PC_ENV_HIT: Pc = BASE + 2 * 0x9e4;
const PC_ENV_LOOP: Pc = BASE + 3 * 0x9e4;
const PC_IS_ADD: Pc = BASE + 4 * 0x9e4;
const PC_IS_MUL: Pc = BASE + 5 * 0x9e4;
const PC_IS_IF: Pc = BASE + 6 * 0x9e4;
const PC_IF_TRUE: Pc = BASE + 7 * 0x9e4;
const PC_IS_LET: Pc = BASE + 8 * 0x9e4;
const PC_ARGS_LOOP: Pc = BASE + 9 * 0x9e4;
const PC_GC_DUE: Pc = BASE + 10 * 0x9e4;
const PC_GC_MARK_LOOP: Pc = BASE + 11 * 0x9e4;
const PC_GC_LIVE: Pc = BASE + 12 * 0x9e4;
const PC_DEPTH_GUARD: Pc = BASE + 13 * 0x9e4;
const PC_IS_CALL: Pc = BASE + 14 * 0x9e4;
const PC_ARITY_OK: Pc = BASE + 15 * 0x9e4;
const PC_BIND_LOOP: Pc = BASE + 16 * 0x9e4;

const FN_EVAL: Pc = BASE + 0x1000;

#[derive(Debug, Clone)]
enum Expr {
    Num(i64),
    Var(u8),
    Add(Vec<Expr>),
    Mul(Vec<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    Let(u8, Box<Expr>, Box<Expr>),
    /// Call a user-defined function from the program's function pool.
    CallFn(u8, Vec<Expr>),
}

/// A user-defined lisp function: argument names and a body over them.
#[derive(Debug, Clone)]
struct FnDef {
    params: Vec<u8>,
    body: Expr,
}

/// `fns` is the number of callable user functions (0 while generating the
/// function bodies themselves, to keep call graphs acyclic).
fn gen_expr(rng: &mut StdRng, depth: u32, fns: u8) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.85) {
            Expr::Num(rng.gen_range(-9..10))
        } else {
            Expr::Var(rng.gen_range(0..6))
        };
    }
    match rng.gen_range(0..10) {
        0..=2 => Expr::Add(
            (0..rng.gen_range(2..4))
                .map(|_| gen_expr(rng, depth - 1, fns))
                .collect(),
        ),
        3..=4 => Expr::Mul(
            (0..rng.gen_range(2..4))
                .map(|_| gen_expr(rng, depth - 1, fns))
                .collect(),
        ),
        5..=6 => Expr::If(
            Box::new(gen_expr(rng, depth - 1, fns)),
            Box::new(gen_expr(rng, depth - 1, fns)),
            Box::new(gen_expr(rng, depth - 1, fns)),
        ),
        7 => Expr::Let(
            rng.gen_range(0..6),
            Box::new(gen_expr(rng, depth - 1, fns)),
            Box::new(gen_expr(rng, depth - 1, fns)),
        ),
        _ if fns > 0 => Expr::CallFn(
            rng.gen_range(0..fns),
            (0..rng.gen_range(1..3))
                .map(|_| gen_expr(rng, depth - 1, fns))
                .collect(),
        ),
        _ => Expr::Num(rng.gen_range(-9..10)),
    }
}

/// Generates the program's function pool: small bodies over their params.
fn gen_fns(rng: &mut StdRng) -> Vec<FnDef> {
    (0..4)
        .map(|_| {
            let arity = rng.gen_range(1..3u8);
            FnDef {
                params: (1..=arity).collect(),
                body: gen_expr(rng, 2, 0),
            }
        })
        .collect()
}

struct Interp {
    /// Association-list environment: (name, value), newest first.
    env: Vec<(u8, i64)>,
    /// The program's user-defined functions.
    fns: Vec<FnDef>,
    allocs: u64,
    heap: Vec<bool>, // liveness bitmap for the GC sweep
}

impl Interp {
    fn new() -> Self {
        Interp {
            env: Vec::new(),
            fns: Vec::new(),
            allocs: 0,
            heap: vec![true; 64],
        }
    }

    fn lookup<S: TraceSink>(&self, rec: &mut Recorder<S>, name: u8) -> i64 {
        // Association-list scan: hit distance depends on nesting depth.
        for (i, &(n, v)) in self.env.iter().rev().enumerate() {
            if rec.cond(PC_ENV_HIT, n == name) {
                return v;
            }
            rec.loop_back(PC_ENV_LOOP, i + 1 < self.env.len());
        }
        0
    }

    fn maybe_gc<S: TraceSink>(&mut self, rec: &mut Recorder<S>) {
        self.allocs += 1;
        if rec.cond(PC_GC_DUE, self.allocs.is_multiple_of(300)) {
            let n = self.heap.len();
            for i in 0..n {
                let live = rec.cond(PC_GC_LIVE, self.heap[i]);
                if !live {
                    self.heap[i] = true;
                }
                rec.loop_back(PC_GC_MARK_LOOP, i + 1 < n);
            }
            // Retire a rotating band of cells so the next sweep has work —
            // deterministic churn, like generation-ordered reclamation.
            let start = (self.allocs as usize / 300 * 8) % n;
            for k in 0..8 {
                self.heap[(start + k) % n] = false;
            }
        }
    }

    fn eval<S: TraceSink>(&mut self, rec: &mut Recorder<S>, expr: &Expr, depth: u32) -> i64 {
        rec.call(FN_EVAL + depth as u64 % 4, FN_EVAL);
        // Recursion-depth guard: almost never trips.
        rec.cond(PC_DEPTH_GUARD, depth > 64);
        self.maybe_gc(rec);

        let atom = rec.cond(PC_IS_ATOM, matches!(expr, Expr::Num(_) | Expr::Var(_)));
        let result = if atom {
            if rec.cond(PC_IS_NUMBER, matches!(expr, Expr::Num(_))) {
                match expr {
                    Expr::Num(v) => *v,
                    _ => unreachable!(),
                }
            } else {
                match expr {
                    Expr::Var(n) => self.lookup(rec, *n),
                    _ => unreachable!(),
                }
            }
        } else if rec.cond(PC_IS_ADD, matches!(expr, Expr::Add(_))) {
            let args = match expr {
                Expr::Add(a) => a,
                _ => unreachable!(),
            };
            let mut sum = 0i64;
            for (i, a) in args.iter().enumerate() {
                sum = sum.wrapping_add(self.eval(rec, a, depth + 1));
                rec.loop_back(PC_ARGS_LOOP, i + 1 < args.len());
            }
            sum
        } else if rec.cond(PC_IS_MUL, matches!(expr, Expr::Mul(_))) {
            let args = match expr {
                Expr::Mul(a) => a,
                _ => unreachable!(),
            };
            let mut prod = 1i64;
            for (i, a) in args.iter().enumerate() {
                prod = prod.wrapping_mul(self.eval(rec, a, depth + 1));
                rec.loop_back(PC_ARGS_LOOP, i + 1 < args.len());
            }
            prod
        } else if rec.cond(PC_IS_IF, matches!(expr, Expr::If(..))) {
            let (c, t, e) = match expr {
                Expr::If(c, t, e) => (c, t, e),
                _ => unreachable!(),
            };
            let cond = self.eval(rec, c, depth + 1);
            // The program-level branch: correlated with the condition
            // subtree's value, which correlates with sibling tests.
            if rec.cond(PC_IF_TRUE, cond != 0) {
                self.eval(rec, t, depth + 1)
            } else {
                self.eval(rec, e, depth + 1)
            }
        } else if rec.cond(PC_IS_CALL, matches!(expr, Expr::CallFn(..))) {
            let (f, args) = match expr {
                Expr::CallFn(f, args) => (*f as usize, args),
                _ => unreachable!(),
            };
            let def = self.fns[f].clone();
            // Arity check: essentially always satisfied (generation
            // truncates/extends), the classic always-true validation.
            let arity_ok = rec.cond(PC_ARITY_OK, !args.is_empty());
            let frame_base = self.env.len();
            for (i, (param, arg)) in def.params.iter().zip(args.iter()).enumerate() {
                let v = self.eval(rec, arg, depth + 1);
                self.env.push((*param, v));
                rec.loop_back(PC_BIND_LOOP, i + 1 < def.params.len().min(args.len()));
            }
            let r = if arity_ok {
                self.eval(rec, &def.body, depth + 1)
            } else {
                0
            };
            self.env.truncate(frame_base);
            r
        } else {
            let is_let = rec.cond(PC_IS_LET, matches!(expr, Expr::Let(..)));
            debug_assert!(is_let);
            let (name, val, body) = match expr {
                Expr::Let(n, v, b) => (*n, v, b),
                _ => unreachable!(),
            };
            let v = self.eval(rec, val, depth + 1);
            self.env.push((name, v));
            let r = self.eval(rec, body, depth + 1);
            self.env.pop();
            r
        };
        rec.ret(FN_EVAL + 0x40);
        result
    }
}

/// Generates the xlisp trace.
///
/// A lisp *program* (a pool of top-level expressions) is evaluated over
/// several rounds with one free variable rebound per round — like the
/// paper's `train.lsp` repeatedly exercising the same functions on changing
/// data. Reuse makes most branches highly predictable; the rebinding keeps
/// a data-dependent residue.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the xlisp trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0x115b));
    let mut rec = Recorder::with_sink(sink);
    let mut interp = Interp::new();
    while rec.conditional_len() < cfg.target_branches {
        interp.fns = gen_fns(&mut rng);
        let n_fns = interp.fns.len() as u8;
        let pool: Vec<Expr> = (0..8).map(|_| gen_expr(&mut rng, 3, n_fns)).collect();
        for round in 0..32 {
            // Rebind the data variable: same code, changing input.
            interp.env.push((0, round as i64 - 3));
            for expr in &pool {
                let _ = interp.eval(&mut rec, expr, 0);
            }
            interp.env.pop();
            if rec.conditional_len() >= cfg.target_branches {
                break;
            }
        }
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchKind, TraceStats};

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 19,
            target_branches: 20_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn records_calls_and_returns() {
        let t = generate(&WorkloadConfig {
            seed: 19,
            target_branches: 10_000,
        });
        let calls = t.iter().filter(|r| r.kind == BranchKind::Call).count();
        let rets = t.iter().filter(|r| r.kind == BranchKind::Return).count();
        assert!(calls > 0);
        assert_eq!(calls, rets);
        let stats = TraceStats::of(&t);
        assert!(stats.static_conditional >= 10, "{stats:?}");
    }
}

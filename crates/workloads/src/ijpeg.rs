//! `ijpeg` analog: a block image coder — 8×8 DCT-ish transform, quantize,
//! zigzag run-length encode.
//!
//! Branch profile: dominated by *regular nested loops* with fixed trip
//! counts (8-wide rows/columns, block grids) — prime PAs territory — plus a
//! biased quantize-to-zero test whose bias tracks frequency position within
//! the block, giving strong repeating patterns. This is why PAs beats
//! gshare on ijpeg in the paper (Table 3 vs Table 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0040_0000;

const PC_BLOCK_LOOP: Pc = BASE;
const PC_ROW_LOOP: Pc = BASE + 0x9e4;
const PC_COL_LOOP: Pc = BASE + 2 * 0x9e4;
const PC_QUANT_ZERO: Pc = BASE + 3 * 0x9e4;
const PC_DC_DIFF_NEG: Pc = BASE + 4 * 0x9e4;
const PC_RUN_EXTEND: Pc = BASE + 5 * 0x9e4;
const PC_RUN_LOOP: Pc = BASE + 6 * 0x9e4;
const PC_EOB: Pc = BASE + 7 * 0x9e4;
const PC_SMOOTH_BLOCK: Pc = BASE + 8 * 0x9e4;
const PC_CLAMP_HI: Pc = BASE + 9 * 0x9e4;
const PC_CLAMP_LO: Pc = BASE + 10 * 0x9e4;
const PC_SCAN_LOOP: Pc = BASE + 11 * 0x9e4;
const PC_HUFF_LONG: Pc = BASE + 12 * 0x9e4;

const BLOCK: usize = 8;

/// A synthetic "photograph": smooth gradients plus textured regions, so
/// blocks vary between trivially-compressible and detail-heavy.
fn make_image(rng: &mut StdRng, w: usize, h: usize) -> Vec<i32> {
    let gx = rng.gen_range(-3..=3);
    let gy = rng.gen_range(-3..=3);
    let mut img = vec![0i32; w * h];
    for y in 0..h {
        for x in 0..w {
            // Texture regions are *structured* (stripes), so detail
            // blocks produce repeating coefficient patterns; a little
            // sensor noise sits on top.
            let texture = if (x / 16 + y / 16) % 4 == 0 {
                ((x * 7 + y * 3) % 5) as i32 * 18 - 36 + rng.gen_range(-9..=9)
            } else {
                0
            };
            img[y * w + x] = 128 + gx * x as i32 / 4 + gy * y as i32 / 4 + texture;
        }
    }
    img
}

/// A cheap separable "DCT": row/column Haar-like butterflies. Not a real
/// DCT, but it concentrates smooth-block energy in low coefficients the
/// same way, which is all the branch behavior depends on.
fn transform<S: TraceSink>(rec: &mut Recorder<S>, block: &mut [i32; BLOCK * BLOCK]) {
    for r in 0..BLOCK {
        for step in 0..3 {
            let half = BLOCK >> (step + 1);
            for i in 0..half {
                let a = block[r * BLOCK + i];
                let b = block[r * BLOCK + i + half];
                block[r * BLOCK + i] = a + b;
                block[r * BLOCK + i + half] = a - b;
            }
            rec.loop_back(PC_SCAN_LOOP, step < 2);
        }
        rec.loop_back(PC_ROW_LOOP, r + 1 < BLOCK);
    }
    for c in 0..BLOCK {
        for step in 0..3 {
            let half = BLOCK >> (step + 1);
            for i in 0..half {
                let a = block[i * BLOCK + c];
                let b = block[(i + half) * BLOCK + c];
                block[i * BLOCK + c] = a + b;
                block[(i + half) * BLOCK + c] = a - b;
            }
        }
        rec.loop_back(PC_COL_LOOP, c + 1 < BLOCK);
    }
}

fn encode_block<S: TraceSink>(
    rec: &mut Recorder<S>,
    block: &mut [i32; BLOCK * BLOCK],
    prev_dc: &mut i32,
) {
    transform(rec, block);

    // Quantize: divisor grows with frequency (position in block).
    let mut quantized = [0i32; BLOCK * BLOCK];
    let mut nonzero = 0;
    for (idx, q) in quantized.iter_mut().enumerate() {
        let (r, c) = (idx / BLOCK, idx % BLOCK);
        let divisor = 14 + 11 * (r + c) as i32;
        let v = block[idx] / divisor;
        // The workhorse branch: high-frequency coefficients quantize to
        // zero most of the time; low frequencies rarely do.
        if rec.cond(PC_QUANT_ZERO, v == 0) {
            *q = 0;
        } else {
            let clamped_hi = rec.cond(PC_CLAMP_HI, v > 127);
            let clamped_lo = rec.cond(PC_CLAMP_LO, v < -128);
            *q = if clamped_hi {
                127
            } else if clamped_lo {
                -128
            } else {
                v
            };
            nonzero += 1;
        }
    }

    // DC difference coding.
    let dc = quantized[0];
    rec.cond(PC_DC_DIFF_NEG, dc < *prev_dc);
    *prev_dc = dc;

    rec.cond(PC_SMOOTH_BLOCK, nonzero <= 4);

    // Zigzag run-length encode: runs of zeros between nonzero coefficients.
    let mut i = 1;
    while i < BLOCK * BLOCK {
        let mut run = 0;
        while rec.cond(PC_RUN_EXTEND, quantized[i] == 0) {
            run += 1;
            i += 1;
            rec.loop_back(PC_RUN_LOOP, i < BLOCK * BLOCK);
            if i >= BLOCK * BLOCK {
                break;
            }
        }
        if rec.cond(PC_EOB, i >= BLOCK * BLOCK) {
            break;
        }
        // Symbol size class (models Huffman code-length selection).
        rec.cond(PC_HUFF_LONG, quantized[i].abs() > 7 || run > 7);
        i += 1;
    }
}

/// Generates the ijpeg trace.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the ijpeg trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0x19E6));
    let mut rec = Recorder::with_sink(sink);
    const W: usize = 96;
    const H: usize = 64;
    while rec.conditional_len() < cfg.target_branches {
        let img = make_image(&mut rng, W, H);
        let mut prev_dc = 0;
        let blocks_x = W / BLOCK;
        let blocks_y = H / BLOCK;
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let mut block = [0i32; BLOCK * BLOCK];
                for r in 0..BLOCK {
                    for c in 0..BLOCK {
                        block[r * BLOCK + c] = img[(by * BLOCK + r) * W + bx * BLOCK + c];
                    }
                }
                encode_block(&mut rec, &mut block, &mut prev_dc);
                rec.loop_back(PC_BLOCK_LOOP, bx + 1 < blocks_x || by + 1 < blocks_y);
            }
        }
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchProfile, TraceStats};

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 9,
            target_branches: 20_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn loop_dominated_profile() {
        let t = generate(&WorkloadConfig {
            seed: 9,
            target_branches: 40_000,
        });
        let stats = TraceStats::of(&t);
        // Back-edges are a large share of the stream.
        assert!(
            stats.backward as f64 / stats.dynamic_conditional as f64 > 0.2,
            "{stats:?}"
        );
        // Most branches are fairly predictable statically (regular loops).
        let profile = BranchProfile::of(&t);
        assert!(profile.ideal_static_accuracy() > 0.75);
    }
}

//! `go` analog: a game-position evaluator over random board states.
//!
//! Branch profile (go was the hardest benchmark in the paper — gshare 84%):
//! weakly biased, data-dependent branches whose conditions mix board
//! contents with positional noise, so neither self-history nor short global
//! history pins them down. A thin layer of genuine correlation remains
//! (ownership tests reuse the same influence values), which is what the
//! selective-history oracle can still find.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0030_0000;
const N: usize = 13; // board edge

const PC_ROW_LOOP: Pc = BASE;
const PC_COL_LOOP: Pc = BASE + 0x9e4;
const PC_OCCUPIED: Pc = BASE + 2 * 0x9e4;
const PC_BLACK_STONE: Pc = BASE + 3 * 0x9e4;
const PC_EDGE: Pc = BASE + 4 * 0x9e4;
const PC_INFLUENCE_HI: Pc = BASE + 5 * 0x9e4;
const PC_CONTESTED: Pc = BASE + 6 * 0x9e4;
const PC_BLACK_OWNS: Pc = BASE + 7 * 0x9e4;
const PC_CAPTURE_SCAN: Pc = BASE + 8 * 0x9e4;
const PC_LIBERTY: Pc = BASE + 9 * 0x9e4;
const PC_LIBERTY_LOOP: Pc = BASE + 10 * 0x9e4;
const PC_ATARI: Pc = BASE + 11 * 0x9e4;
const PC_GAME_LOOP: Pc = BASE + 12 * 0x9e4;
const PC_STRONG_AND_CENTER: Pc = BASE + 13 * 0x9e4;
const PC_LADDER_STEP: Pc = BASE + 14 * 0x9e4;
const PC_LADDER_LOOP: Pc = BASE + 15 * 0x9e4;
const PC_LADDER_WORKS: Pc = BASE + 16 * 0x9e4;
const PC_OWNER_RECHECK: Pc = BASE + 17 * 0x9e4;

#[derive(Clone, Copy, PartialEq)]
enum Point {
    Empty,
    Black,
    White,
}

struct Board {
    cells: Vec<Point>,
}

impl Board {
    fn random(rng: &mut StdRng) -> Self {
        // ~55% empty, stones clustered: place random walks of stones so
        // neighborhoods are spatially correlated like real positions.
        let mut cells = vec![Point::Empty; N * N];
        for _ in 0..10 {
            let color = if rng.gen_bool(0.5) {
                Point::Black
            } else {
                Point::White
            };
            let mut r = rng.gen_range(0..N);
            let mut c = rng.gen_range(0..N);
            for _ in 0..rng.gen_range(3..9) {
                cells[r * N + c] = color;
                match rng.gen_range(0..4) {
                    0 if r + 1 < N => r += 1,
                    1 if r > 0 => r -= 1,
                    2 if c + 1 < N => c += 1,
                    _ if c > 0 => c -= 1,
                    _ => {}
                }
            }
        }
        Board { cells }
    }

    fn at(&self, r: isize, c: isize) -> Point {
        if r < 0 || c < 0 || r as usize >= N || c as usize >= N {
            Point::Empty
        } else {
            self.cells[r as usize * N + c as usize]
        }
    }

    /// Net black influence on a point: weighted stone counts in a 2-radius
    /// neighborhood plus positional noise.
    fn influence(&self, r: usize, c: usize, noise: i32) -> i32 {
        let mut inf = noise;
        for dr in -2isize..=2 {
            for dc in -2isize..=2 {
                let w = 3 - (dr.abs() + dc.abs()).min(3) as i32;
                match self.at(r as isize + dr, c as isize + dc) {
                    Point::Black => inf += w,
                    Point::White => inf -= w,
                    Point::Empty => {}
                }
            }
        }
        inf
    }
}

fn evaluate<S: TraceSink>(
    rec: &mut Recorder<S>,
    board: &Board,
    rng: &mut StdRng,
    ladder_len: usize,
) -> i32 {
    let mut score = 0;
    for r in 0..N {
        for c in 0..N {
            let p = board.cells[r * N + c];
            let noise = rng.gen_range(-5..=5);
            let inf = board.influence(r, c, noise);
            let edge = r == 0 || c == 0 || r == N - 1 || c == N - 1;

            if rec.cond(PC_OCCUPIED, p != Point::Empty) {
                let black = rec.cond(PC_BLACK_STONE, p == Point::Black);
                // Liberty scan: count empty neighbors (short variable loop).
                let mut libs = 0;
                for (i, (dr, dc)) in [(0, 1), (0, -1), (1, 0), (-1, 0)].iter().enumerate() {
                    if rec.cond(
                        PC_LIBERTY,
                        board.at(r as isize + dr, c as isize + dc) == Point::Empty,
                    ) {
                        libs += 1;
                    }
                    rec.loop_back(PC_LIBERTY_LOOP, i < 3);
                }
                if rec.cond(PC_ATARI, libs <= 1) {
                    // Capture-threat scan around the stone.
                    rec.cond(PC_CAPTURE_SCAN, inf * if black { 1 } else { -1 } < 0);
                    // Ladder reading: chase the escape for a number of
                    // steps fixed by the board's geometry — the same trip
                    // count for every atari on this board, longer than any
                    // per-address history.
                    for step in 0..ladder_len {
                        rec.cond(PC_LADDER_STEP, true);
                        rec.loop_back(PC_LADDER_LOOP, step + 1 < ladder_len);
                    }
                    rec.cond(PC_LADDER_WORKS, !(ladder_len + r + c).is_multiple_of(3));
                    score += if black { -4 } else { 4 };
                }
                // Ownership recheck at the end of the point evaluation:
                // repeats the PC_BLACK_STONE decision from ~11 branches
                // earlier, with the noisy liberty/ladder scans in between.
                // A 1-tag selective history reads it directly; gshare must
                // train 2^10-odd noise-diluted patterns (§3.6.3's
                // unexploited correlation).
                rec.cond(PC_OWNER_RECHECK, black);
            } else {
                // Territory estimation: the weakly biased heart of go.
                let strong = rec.cond(PC_INFLUENCE_HI, inf.abs() >= 4);
                if strong {
                    if rec.cond(PC_BLACK_OWNS, inf > 0) {
                        score += 1;
                    } else {
                        score -= 1;
                    }
                } else {
                    rec.cond(PC_CONTESTED, inf != 0);
                }
                // Correlated pair: strong AND central (cond1 && cond2 on
                // the same influence value).
                rec.cond(PC_STRONG_AND_CENTER, inf.abs() >= 4 && !edge);
                rec.cond(PC_EDGE, edge);
            }
            rec.loop_back(PC_COL_LOOP, c + 1 < N);
        }
        rec.loop_back(PC_ROW_LOOP, r + 1 < N);
    }
    score
}

/// Generates the go trace.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the go trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0x60));
    let mut rec = Recorder::with_sink(sink);
    let mut games = 0u64;
    while rec.conditional_len() < cfg.target_branches {
        let board = Board::random(&mut rng);
        // Ladder length: a property of the whole position; changes only
        // when the board does.
        let ladder_len = 14 + (rng.gen_range(0..12) as usize);
        let _ = evaluate(&mut rec, &board, &mut rng, ladder_len);
        games += 1;
        rec.loop_back(PC_GAME_LOOP, !games.is_multiple_of(4));
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::TraceStats;

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 5,
            target_branches: 20_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn weakly_biased_profile() {
        use bp_trace::BranchProfile;
        let t = generate(&WorkloadConfig {
            seed: 5,
            target_branches: 40_000,
        });
        let profile = BranchProfile::of(&t);
        // go's signature: ideal static is weak relative to the other
        // workloads. (The loop back-edges are biased, the evaluations are
        // not.)
        assert!(
            profile.ideal_static_accuracy() < 0.92,
            "{}",
            profile.ideal_static_accuracy()
        );
        let stats = TraceStats::of(&t);
        assert!(stats.static_conditional >= 10);
    }
}

//! `vortex` analog: transactions against a small in-memory object store
//! (B-tree-ish ordered index plus schema validation).
//!
//! Branch profile: vortex was the most predictable benchmark in the paper
//! (gshare 99.0%) because it is wall-to-wall *validation*: null checks,
//! type checks, bounds checks that essentially always pass. The residual
//! action is ordered-index traversal, which is biased by the key
//! distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0070_0000;

const PC_TXN_LOOP: Pc = BASE;
const PC_VALID_HANDLE: Pc = BASE + 0x9e4;
const PC_VALID_SCHEMA: Pc = BASE + 2 * 0x9e4;
const PC_VALID_FIELDS: Pc = BASE + 3 * 0x9e4;
const PC_IS_INSERT: Pc = BASE + 4 * 0x9e4;
const PC_IS_LOOKUP: Pc = BASE + 5 * 0x9e4;
const PC_PAGE_SKIP: Pc = BASE + 6 * 0x9e4;
const PC_PAGE_LOOP: Pc = BASE + 7 * 0x9e4;
const PC_SCAN_PAST: Pc = BASE + 8 * 0x9e4;
const PC_SCAN_LOOP: Pc = BASE + 9 * 0x9e4;
const PC_KEY_FOUND: Pc = BASE + 10 * 0x9e4;
const PC_NODE_FULL: Pc = BASE + 11 * 0x9e4;
const PC_CACHE_HIT: Pc = BASE + 12 * 0x9e4;
const PC_COMMIT_OK: Pc = BASE + 13 * 0x9e4;
const PC_AUDIT_DUE: Pc = BASE + 14 * 0x9e4;
const PC_AUDIT_LOOP: Pc = BASE + 15 * 0x9e4;
const PC_AUDIT_LIVE: Pc = BASE + 16 * 0x9e4;

#[derive(Debug, Clone, Copy)]
struct Object {
    key: u32,
    schema: u8,
    field_count: u8,
    live: bool,
}

struct Store {
    /// Sorted by key — stands in for the B-tree leaf chain.
    objects: Vec<Object>,
    cache_tag: u32,
    committed: u64,
}

impl Store {
    fn new() -> Self {
        Store {
            objects: Vec::new(),
            cache_tag: u32::MAX,
            committed: 0,
        }
    }

    /// Index walk like a B-tree descent: skip whole pages while their last
    /// key is below the target (strongly biased taken), then scan within
    /// the page (biased taken until the stopping point).
    fn position<S: TraceSink>(&self, rec: &mut Recorder<S>, key: u32) -> Result<usize, usize> {
        const PAGE: usize = 256;
        let len = self.objects.len();
        let mut i = 0usize;
        while i + PAGE <= len {
            if !rec.cond(PC_PAGE_SKIP, self.objects[i + PAGE - 1].key < key) {
                break;
            }
            i += PAGE;
            rec.loop_back(PC_PAGE_LOOP, true);
        }
        while i < len {
            if !rec.cond(PC_SCAN_PAST, self.objects[i].key < key) {
                break;
            }
            i += 1;
            rec.loop_back(PC_SCAN_LOOP, true);
        }
        if i < len && self.objects[i].key == key {
            Ok(i)
        } else {
            Err(i)
        }
    }
}

fn validate<S: TraceSink>(rec: &mut Recorder<S>, obj: Object) -> bool {
    // The 99%-biased wall: real vortex spends its life here.
    let h = rec.cond(PC_VALID_HANDLE, obj.key != u32::MAX);
    let s = rec.cond(PC_VALID_SCHEMA, obj.schema < 8);
    let f = rec.cond(PC_VALID_FIELDS, obj.field_count as usize <= 16);
    h && s && f
}

/// The benchmark's scripted operation schedule: vortex.in drives *bursts*
/// of same-type transactions (a load phase, then query phases, then a
/// purge), so the op-type branches are biased over long runs.
fn op_for(step: u64) -> u8 {
    match (step / 48) % 4 {
        3 => {
            if step.is_multiple_of(12) {
                2 // occasional delete inside the maintenance phase
            } else {
                0 // insert burst
            }
        }
        _ => 1, // long lookup phases
    }
}

fn transaction<S: TraceSink>(
    rec: &mut Recorder<S>,
    store: &mut Store,
    rng: &mut StdRng,
    step: u64,
) {
    // Strong temporal locality: most operations touch a small working set
    // of recently used keys; occasionally a fresh key enters.
    let key = if step % 16 == 15 {
        1 + (rng.gen_range(0f64..1f64).powi(2) * 50_000.0) as u32
    } else {
        let slot = (step * 7 + step / 16) % 24;
        1 + (slot * 1787 % 50_000) as u32
    };
    let obj = Object {
        key,
        schema: (key % 7) as u8,
        field_count: (1 + key % 11) as u8,
        live: true,
    };
    if !validate(rec, obj) {
        return;
    }

    rec.cond(PC_CACHE_HIT, store.cache_tag == key >> 8);
    store.cache_tag = key >> 8;

    let op = op_for(step);
    let is_insert = rec.cond(PC_IS_INSERT, op == 0);
    if is_insert {
        match store.position(rec, key) {
            Ok(i) => store.objects[i] = obj,
            Err(i) => {
                // Page-split stand-in: rare, size-driven.
                if rec.cond(PC_NODE_FULL, store.objects.len() % 64 == 63) {
                    store.objects.reserve(64);
                }
                store.objects.insert(i, obj);
            }
        }
    } else if rec.cond(PC_IS_LOOKUP, op == 1) {
        let found = store.position(rec, key).is_ok();
        rec.cond(PC_KEY_FOUND, found);
    } else {
        // Delete: tombstone if present.
        if let Ok(i) = store.position(rec, key) {
            store.objects[i].live = false;
        }
    }

    store.committed += 1;
    rec.cond(PC_COMMIT_OK, !store.committed.is_multiple_of(512));

    // Periodic audit sweep: a long regular loop over live objects.
    if rec.cond(PC_AUDIT_DUE, store.committed.is_multiple_of(200)) {
        let n = store.objects.len();
        for (i, o) in store.objects.iter().enumerate() {
            rec.cond(PC_AUDIT_LIVE, o.live);
            rec.loop_back(PC_AUDIT_LOOP, i + 1 < n);
        }
    }
}

/// Generates the vortex trace.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the vortex trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0x0DB));
    let mut rec = Recorder::with_sink(sink);
    let mut store = Store::new();
    let mut txns = 0u64;
    while rec.conditional_len() < cfg.target_branches {
        transaction(&mut rec, &mut store, &mut rng, txns);
        txns += 1;
        rec.loop_back(PC_TXN_LOOP, !txns.is_multiple_of(1000));
        if store.objects.len() > 3_000 {
            store = Store::new();
        }
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::BranchProfile;

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 17,
            target_branches: 20_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn validation_wall_is_biased() {
        let t = generate(&WorkloadConfig {
            seed: 17,
            target_branches: 40_000,
        });
        let profile = BranchProfile::of(&t);
        for pc in [PC_VALID_HANDLE, PC_VALID_SCHEMA, PC_VALID_FIELDS] {
            let e = profile.get(pc).expect("validation site present");
            assert!(e.bias() > 0.99, "site {pc:#x} bias {}", e.bias());
        }
        // Overall: the most statically predictable workload.
        assert!(
            profile.ideal_static_accuracy() > 0.85,
            "{}",
            profile.ideal_static_accuracy()
        );
    }
}

//! `m88ksim` analog: a fetch/decode/execute simulator of a toy RISC ISA
//! running small fixed kernels.
//!
//! Branch profile: m88ksim was among the easiest benchmarks in the paper
//! (gshare 98.4%) because the simulated program is fixed — the decode
//! dispatch tests are extremely biased per site, the simulated loops are
//! regular, and exception paths essentially never trigger. The simulated
//! program's own conditional branch becomes a strongly patterned branch in
//! the host's trace (the simulator tests "did the guest branch?" every
//! iteration).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0050_0000;

const PC_FETCH_LOOP: Pc = BASE;
const PC_IS_ALU: Pc = BASE + 0x9e4;
const PC_IS_MEM: Pc = BASE + 2 * 0x9e4;
const PC_IS_BRANCH: Pc = BASE + 3 * 0x9e4;
const PC_GUEST_TAKEN: Pc = BASE + 4 * 0x9e4;
const PC_MEM_ALIGNED: Pc = BASE + 5 * 0x9e4;
const PC_EXCEPTION: Pc = BASE + 6 * 0x9e4;
const PC_ZERO_RESULT: Pc = BASE + 7 * 0x9e4;
const PC_INTERRUPT: Pc = BASE + 8 * 0x9e4;
const PC_TLB_HIT: Pc = BASE + 9 * 0x9e4;

/// Guest instruction set.
#[derive(Debug, Clone, Copy)]
enum GuestOp {
    /// rd = rs1 + imm
    Addi { rd: u8, rs1: u8, imm: i32 },
    /// rd = mem\[rs1\]
    Load { rd: u8, rs1: u8 },
    /// mem\[rs1\] = rs2
    Store { rs1: u8, rs2: u8 },
    /// if rs1 != 0 branch back `off` instructions
    Bnez { rs1: u8, off: i32 },
}

/// A guest kernel: checksum an array with a counted loop — the classic
/// m88ksim workload shape (dcrand runs fixed diagnostics).
fn checksum_kernel(len: i32) -> Vec<GuestOp> {
    vec![
        // r1 = len (loop counter), r2 = pointer, r3 = accumulator
        GuestOp::Addi {
            rd: 1,
            rs1: 0,
            imm: len,
        },
        GuestOp::Addi {
            rd: 2,
            rs1: 0,
            imm: 0x100,
        },
        GuestOp::Addi {
            rd: 3,
            rs1: 0,
            imm: 0,
        },
        // loop: r4 = mem[r2]; r3 += r4; r2 += 4; r1 -= 1; bnez r1, loop
        GuestOp::Load { rd: 4, rs1: 2 },
        GuestOp::Addi {
            rd: 3,
            rs1: 4,
            imm: 0,
        },
        GuestOp::Addi {
            rd: 2,
            rs1: 2,
            imm: 4,
        },
        GuestOp::Addi {
            rd: 1,
            rs1: 1,
            imm: -1,
        },
        GuestOp::Bnez { rs1: 1, off: -4 },
        // epilogue: store result
        GuestOp::Store { rs1: 2, rs2: 3 },
    ]
}

struct Machine {
    regs: [i32; 8],
    mem: Vec<i32>,
    pc: usize,
    cycles: u64,
}

impl Machine {
    fn new(rng: &mut StdRng) -> Self {
        Machine {
            regs: [0; 8],
            mem: (0..4096).map(|_| rng.gen_range(-100..100)).collect(),
            pc: 0,
            cycles: 0,
        }
    }

    /// Executes one guest instruction, recording the simulator's branches.
    fn step<S: TraceSink>(&mut self, rec: &mut Recorder<S>, prog: &[GuestOp]) -> bool {
        let op = prog[self.pc];
        self.cycles += 1;

        // Interrupt poll: fires on a long period (timer-like).
        rec.cond(PC_INTERRUPT, self.cycles.is_multiple_of(1024));

        // Decode dispatch chain, one host branch per class.
        if rec.cond(PC_IS_ALU, matches!(op, GuestOp::Addi { .. })) {
            if let GuestOp::Addi { rd, rs1, imm } = op {
                let v = self.regs[rs1 as usize].wrapping_add(imm)
                    + if rs1 == 4 { self.regs[3] } else { 0 };
                rec.cond(PC_ZERO_RESULT, v % 16 == 0);
                self.regs[rd as usize] = v;
            }
        } else if rec.cond(
            PC_IS_MEM,
            matches!(op, GuestOp::Load { .. } | GuestOp::Store { .. }),
        ) {
            let addr = match op {
                GuestOp::Load { rs1, .. } | GuestOp::Store { rs1, .. } => {
                    self.regs[rs1 as usize] as usize
                }
                _ => unreachable!(),
            };
            let aligned = rec.cond(PC_MEM_ALIGNED, addr % 4 == 0);
            rec.cond(PC_TLB_HIT, addr / 64 < 64); // tiny direct-mapped TLB
            if rec.cond(PC_EXCEPTION, !aligned && addr > self.mem.len() * 4) {
                // Essentially never: access fault.
                self.pc = 0;
                return false;
            }
            let idx = (addr / 4) % self.mem.len();
            match op {
                GuestOp::Load { rd, .. } => self.regs[rd as usize] = self.mem[idx],
                GuestOp::Store { rs2, .. } => self.mem[idx] = self.regs[rs2 as usize],
                _ => unreachable!(),
            }
        } else if rec.cond(PC_IS_BRANCH, matches!(op, GuestOp::Bnez { .. })) {
            if let GuestOp::Bnez { rs1, off } = op {
                // The guest loop branch, observed by the simulator.
                if rec.cond(PC_GUEST_TAKEN, self.regs[rs1 as usize] != 0) {
                    self.pc = (self.pc as i32 + off) as usize;
                    return true;
                }
            }
        }
        self.pc += 1;
        self.pc < prog.len()
    }
}

/// Generates the m88ksim trace.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the m88ksim trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0x88));
    let mut rec = Recorder::with_sink(sink);
    while rec.conditional_len() < cfg.target_branches {
        // A diagnostic binary runs the same kernel (same loop length) many
        // times before the suite moves on, so the guest-branch trip count
        // stays fixed for long stretches and then changes — the "n stays
        // the same or changes infrequently" loop shape of §4.1.1. The trip
        // exceeds any per-address history, so only a loop predictor can
        // catch the exits.
        let len = rng.gen_range(14..34);
        for _ in 0..12 {
            let prog = checksum_kernel(len);
            let mut m = Machine::new(&mut rng);
            loop {
                let more = m.step(&mut rec, &prog);
                rec.loop_back(PC_FETCH_LOOP, more);
                if !more {
                    break;
                }
            }
            if rec.conditional_len() >= cfg.target_branches {
                break;
            }
        }
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::BranchProfile;

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 11,
            target_branches: 20_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn highly_biased_profile() {
        let t = generate(&WorkloadConfig {
            seed: 11,
            target_branches: 40_000,
        });
        let profile = BranchProfile::of(&t);
        // m88ksim's signature: high predictability. (The dispatch chain is
        // periodic rather than static, so the dynamic predictors — not
        // ideal static — are what reach the paper's 98%+.)
        assert!(
            profile.ideal_static_accuracy() > 0.85,
            "{}",
            profile.ideal_static_accuracy()
        );
        // The exception branch never fires.
        let exc = profile.get(PC_EXCEPTION).expect("exception site present");
        assert_eq!(exc.taken, 0);
    }
}

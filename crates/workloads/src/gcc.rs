//! `gcc` analog: an optimizing-compiler pass pipeline over randomly
//! generated intermediate code.
//!
//! Branch profile (what made gcc interesting to the paper): a *large static
//! branch footprint* — every function template gets its own copy of the
//! pass-loop branch sites, as inlining and macro expansion do in the real
//! compiler — plus pervasive *correlated guards*: properties computed once
//! per instruction (`is_const`, `has_side_effect`) are re-tested in later
//! passes, the figure 1a `cond1` / `cond1 && cond2` idiom. Long trip-count
//! loops over instruction lists give PAs trouble while the loop predictor
//! shines (Table 3's gcc row).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0020_0000;
/// Distinct function templates; each gets its own copy of every branch site.
const TEMPLATES: u64 = 48;
/// Branch-site slots reserved per template.
const SITE_STRIDE: u64 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Add,
    Mul,
    Load,
    Store,
    Cmp,
    Jump,
    Call,
    Phi,
}

const OPS: [Op; 8] = [
    Op::Add,
    Op::Mul,
    Op::Load,
    Op::Store,
    Op::Cmp,
    Op::Jump,
    Op::Call,
    Op::Phi,
];

#[derive(Debug, Clone, Copy)]
struct Instr {
    op: Op,
    lhs_const: bool,
    rhs_const: bool,
    has_side_effect: bool,
    uses: u8,
}

struct Function {
    template: u64,
    body: Vec<Instr>,
}

/// Branch site `slot` inside `template`'s copy of the pass code.
fn site(template: u64, slot: u64) -> Pc {
    BASE + (template * SITE_STRIDE + slot) * 0x9e4
}

fn gen_function(rng: &mut StdRng) -> Function {
    let template = rng.gen_range(0..TEMPLATES);
    // Mix of short and long bodies; long ones (40-90 instructions) create
    // the loop-exit behavior PAs cannot capture.
    let len = if rng.gen_bool(0.3) {
        rng.gen_range(40..90)
    } else {
        rng.gen_range(4..20)
    };
    // Per-template opcode skew: template id biases which ops dominate, so
    // each template's dispatch branches have their own biases.
    let skew = (template % 8) as usize;
    let body = (0..len)
        .map(|_| {
            let op = if rng.gen_bool(0.45) {
                OPS[skew]
            } else {
                OPS[rng.gen_range(0..OPS.len())]
            };
            let lhs_const = rng.gen_bool(0.35);
            let rhs_const = rng.gen_bool(0.35);
            Instr {
                op,
                lhs_const,
                rhs_const,
                has_side_effect: matches!(op, Op::Store | Op::Call) || rng.gen_bool(0.05),
                uses: rng.gen_range(0..4),
            }
        })
        .collect();
    Function { template, body }
}

/// Constant-folding pass: the `cond1` sites.
fn fold_pass<S: TraceSink>(rec: &mut Recorder<S>, f: &mut Function) -> u32 {
    let t = f.template;
    let mut folded = 0;
    let n = f.body.len();
    for (i, ins) in f.body.iter_mut().enumerate() {
        // Opcode class tests: an if-chain, one site each.
        let arith = rec.cond(site(t, 0), matches!(ins.op, Op::Add | Op::Mul));
        if arith {
            // cond1: left operand constant.
            let lc = rec.cond(site(t, 1), ins.lhs_const);
            // cond1 && cond2: both constant (figure 1a shape).
            if rec.cond(site(t, 2), ins.lhs_const && ins.rhs_const) {
                ins.op = Op::Phi; // folded to a constant def
                ins.lhs_const = true;
                folded += 1;
            } else if lc {
                // Canonicalize constant to the right.
                std::mem::swap(&mut ins.lhs_const, &mut ins.rhs_const);
            }
        } else if rec.cond(site(t, 3), matches!(ins.op, Op::Load | Op::Store)) {
            // Address-is-constant test, weakly biased.
            rec.cond(site(t, 4), ins.lhs_const);
        }
        rec.loop_back(site(t, 5), i + 1 < n);
    }
    folded
}

/// Dead-code elimination: re-tests properties the fold pass established
/// (figure 1b: information generated based on earlier outcomes).
fn dce_pass<S: TraceSink>(rec: &mut Recorder<S>, f: &mut Function) -> u32 {
    let t = f.template;
    let mut removed = 0;
    let n = f.body.len();
    for i in (0..n).rev() {
        let ins = f.body[i];
        let dead = ins.uses == 0 && !ins.has_side_effect;
        // Side-effect guard: correlated with the fold pass's opcode tests
        // (stores/calls took the `site(t,3)` path there).
        if !rec.cond(site(t, 6), ins.has_side_effect) && rec.cond(site(t, 7), dead) {
            f.body[i].op = Op::Phi;
            f.body[i].uses = u8::MAX; // tombstone
            removed += 1;
        }
        rec.loop_back(site(t, 8), i > 0);
    }
    removed
}

/// Register-pressure scan: long-loop trip counts over the body, plus a
/// spill decision that depends on accumulated pressure (history-flavored).
fn regalloc_pass<S: TraceSink>(rec: &mut Recorder<S>, f: &Function) -> u32 {
    let t = f.template;
    let mut pressure: i32 = 0;
    let mut spills = 0;
    let n = f.body.len();
    for (i, ins) in f.body.iter().enumerate() {
        if rec.cond(site(t, 9), ins.op == Op::Phi) {
            // Folded/dead instructions cost nothing.
        } else {
            pressure += i32::from(ins.uses) - 1;
            if rec.cond(site(t, 10), pressure > 8) {
                pressure -= 4;
                spills += 1;
            }
        }
        rec.loop_back(site(t, 11), i + 1 < n);
    }
    spills
}

/// Generates the gcc trace.
///
/// A *translation unit* (a pool of functions) is generated, then the pass
/// pipeline sweeps the whole unit several times — compilers revisit the
/// same IR repeatedly, and that reuse is what makes real gcc's branches
/// ~92% predictable despite their enormous static count. The first sweep
/// mutates the IR (folds, kills dead code); later sweeps see stabilized
/// code, so per-site outcome sequences become repeating.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the gcc trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0x6CC));
    let mut rec = Recorder::with_sink(sink);
    while rec.conditional_len() < cfg.target_branches {
        let mut unit: Vec<Function> = (0..12).map(|_| gen_function(&mut rng)).collect();
        for _round in 0..34 {
            for f in unit.iter_mut() {
                let folded = fold_pass(&mut rec, f);
                let removed = dce_pass(&mut rec, f);
                let spills = regalloc_pass(&mut rec, f);
                // Rerun-fold heuristic: a function-level branch correlated
                // with what the passes did (figure 1b at coarser grain).
                if rec.cond(site(f.template, 12), folded + removed > 4 && spills == 0) {
                    fold_pass(&mut rec, f);
                }
            }
            if rec.conditional_len() >= cfg.target_branches {
                break;
            }
        }
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::TraceStats;

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 3,
            target_branches: 30_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 30_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn large_static_footprint() {
        let t = generate(&WorkloadConfig {
            seed: 3,
            target_branches: 60_000,
        });
        let stats = TraceStats::of(&t);
        // Many templates × ~13 sites each: a static branch count an order
        // of magnitude beyond the other workloads, gcc's defining property.
        assert!(stats.static_conditional > 120, "{stats:?}");
    }

    #[test]
    fn correlated_guards_present() {
        // site(t,1) taken implies nothing alone, but site(t,2) taken
        // implies site(t,1) was taken (cond1 && cond2 ⊆ cond1): verify the
        // implication holds across every template by replaying the trace.
        let t = generate(&WorkloadConfig {
            seed: 3,
            target_branches: 30_000,
        });
        let mut last_site1 = vec![None::<bool>; TEMPLATES as usize];
        let mut violations = 0u32;
        let mut checked = 0u32;
        for r in t.conditionals() {
            for template in 0..TEMPLATES {
                if r.pc == site(template, 1) {
                    last_site1[template as usize] = Some(r.taken);
                } else if r.pc == site(template, 2) {
                    if let Some(s1) = last_site1[template as usize] {
                        checked += 1;
                        if r.taken && !s1 {
                            violations += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 0);
        assert_eq!(violations, 0);
    }
}

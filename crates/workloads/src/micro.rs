//! Controlled microbenchmarks: single-behavior branch generators for
//! predictor studies, tests, and benches.
//!
//! Where the eight [`crate::Benchmark`]s are program-shaped mixtures, each
//! [`MicroPattern`] isolates exactly one behavior from the paper's
//! taxonomy — a biased branch, a loop, a repeating pattern, a correlated
//! pair, an in-path split — with tunable parameters. Compose several into
//! one trace with [`MicroTrace`].
//!
//! # Example
//!
//! ```
//! use bp_workloads::micro::{MicroPattern, MicroTrace};
//!
//! // A trip-20 loop interleaved with a 90%-taken biased branch.
//! let trace = MicroTrace::new(7)
//!     .with(MicroPattern::Loop { trip: 20 })
//!     .with(MicroPattern::Biased { taken_rate: 0.9 })
//!     .generate(10_000);
//! assert!(trace.conditional_count() >= 10_000);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace};

/// One isolated branch behavior (paper taxonomy reference in each variant).
#[derive(Debug, Clone, PartialEq)]
pub enum MicroPattern {
    /// A branch taken with fixed probability (the §4.1 "biased" floor;
    /// `taken_rate` 0.99+ gives the ">99% biased" class).
    Biased {
        /// Probability the branch is taken.
        taken_rate: f64,
    },
    /// A for-type loop branch: taken `trip` times, then not-taken once
    /// (§4.1.1). The back-edge is recorded so iteration tagging works.
    Loop {
        /// Iterations per loop execution.
        trip: u32,
    },
    /// A branch repeating a fixed outcome pattern (§4.1.2 fixed-length).
    Periodic {
        /// The repeating outcome sequence (must be non-empty).
        pattern: Vec<bool>,
    },
    /// A block pattern: `taken_run` takens then `not_taken_run` not-takens
    /// (§4.1.2 block).
    Block {
        /// Length of each taken run.
        taken_run: u32,
        /// Length of each not-taken run.
        not_taken_run: u32,
    },
    /// A random leader branch whose outcome a follower repeats after
    /// `distance` unrelated noise branches (§3.1 direction correlation;
    /// figure 1a/1b).
    Correlated {
        /// Noise branches inserted between leader and follower.
        distance: u32,
    },
    /// Figure 2's in-path correlation: control routes through one of two
    /// marker branches via a call (no conditional encodes the condition),
    /// and a join branch repeats the condition. Only *which* marker was on
    /// the path predicts the join.
    InPath,
}

/// Composes [`MicroPattern`]s into a deterministic trace, round-robin, one
/// pattern "step" at a time.
#[derive(Debug, Clone)]
pub struct MicroTrace {
    seed: u64,
    patterns: Vec<MicroPattern>,
}

impl MicroTrace {
    /// Starts an empty composition with an RNG seed.
    pub fn new(seed: u64) -> Self {
        MicroTrace {
            seed,
            patterns: Vec::new(),
        }
    }

    /// Adds a pattern (chainable).
    ///
    /// # Panics
    ///
    /// Panics if a [`MicroPattern::Periodic`] pattern is empty, a
    /// [`MicroPattern::Biased`] rate is outside `0.0..=1.0`, or a
    /// [`MicroPattern::Loop`] trip is zero.
    pub fn with(mut self, pattern: MicroPattern) -> Self {
        match &pattern {
            MicroPattern::Periodic { pattern } => {
                assert!(!pattern.is_empty(), "periodic pattern must be non-empty");
            }
            MicroPattern::Biased { taken_rate } => {
                assert!(
                    (0.0..=1.0).contains(taken_rate),
                    "taken rate must be a probability"
                );
            }
            MicroPattern::Loop { trip } => assert!(*trip > 0, "loop trip must be positive"),
            MicroPattern::Block {
                taken_run,
                not_taken_run,
            } => assert!(
                *taken_run > 0 && *not_taken_run > 0,
                "block runs must be positive"
            ),
            _ => {}
        }
        self.patterns.push(pattern);
        self
    }

    /// Base address of the `i`-th pattern's branch sites.
    pub fn base_pc(i: usize) -> Pc {
        0x0100_0000 + (i as Pc) * 0x1000
    }

    /// Generates at least `target_branches` dynamic conditional branches.
    ///
    /// # Panics
    ///
    /// Panics if no patterns were added.
    pub fn generate(&self, target_branches: usize) -> Trace {
        assert!(!self.patterns.is_empty(), "add at least one pattern");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rec = Recorder::with_capacity(target_branches + 64);
        let mut periodic_pos = vec![0usize; self.patterns.len()];
        while rec.conditional_len() < target_branches {
            for (i, pattern) in self.patterns.iter().enumerate() {
                let base = Self::base_pc(i);
                match pattern {
                    MicroPattern::Biased { taken_rate } => {
                        rec.cond(base, rng.gen_bool(*taken_rate));
                    }
                    MicroPattern::Loop { trip } => {
                        for _ in 0..*trip {
                            rec.loop_back(base, true);
                        }
                        rec.loop_back(base, false);
                    }
                    MicroPattern::Periodic { pattern } => {
                        let p = &mut periodic_pos[i];
                        rec.cond(base, pattern[*p % pattern.len()]);
                        *p += 1;
                    }
                    MicroPattern::Block {
                        taken_run,
                        not_taken_run,
                    } => {
                        for _ in 0..*taken_run {
                            rec.cond(base, true);
                        }
                        for _ in 0..*not_taken_run {
                            rec.cond(base, false);
                        }
                    }
                    MicroPattern::Correlated { distance } => {
                        let lead = rng.gen_bool(0.5);
                        rec.cond(base, lead);
                        for d in 0..*distance {
                            rec.cond(base + 8 + Pc::from(d) * 4, rng.gen_bool(0.5));
                        }
                        rec.cond(base + 4, lead);
                    }
                    MicroPattern::InPath => {
                        let cond = rng.gen_bool(0.5);
                        let noise = rng.gen_bool(0.5);
                        if cond {
                            rec.call(base + 0x100, base + 0x200);
                            rec.cond(base + 0x204, noise);
                            rec.ret(base + 0x208);
                        } else {
                            rec.call(base + 0x100, base + 0x300);
                            rec.cond(base + 0x304, noise);
                            rec.ret(base + 0x308);
                        }
                        rec.cond(base + 0x110, cond);
                        rec.loop_back(base + 0x114, true);
                    }
                }
            }
        }
        rec.into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_rate_is_respected() {
        let trace = MicroTrace::new(1)
            .with(MicroPattern::Biased { taken_rate: 0.9 })
            .generate(20_000);
        let stats = bp_trace::TraceStats::of(&trace);
        let rate = stats.taken_rate();
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn loop_pattern_has_correct_trip_structure() {
        let trace = MicroTrace::new(1)
            .with(MicroPattern::Loop { trip: 9 })
            .generate(1_000);
        // Taken rate must be trip/(trip+1).
        let stats = bp_trace::TraceStats::of(&trace);
        assert!((stats.taken_rate() - 0.9).abs() < 0.01);
        // All records are back-edges of one static branch.
        assert_eq!(stats.static_conditional, 1);
        assert_eq!(stats.backward, stats.dynamic_conditional);
    }

    #[test]
    fn periodic_pattern_repeats_exactly() {
        let pattern = vec![true, false, false, true];
        let trace = MicroTrace::new(1)
            .with(MicroPattern::Periodic {
                pattern: pattern.clone(),
            })
            .generate(400);
        for (i, rec) in trace.conditionals().enumerate() {
            assert_eq!(rec.taken, pattern[i % 4], "position {i}");
        }
    }

    #[test]
    fn correlated_follower_copies_leader() {
        let trace = MicroTrace::new(5)
            .with(MicroPattern::Correlated { distance: 4 })
            .generate(2_000);
        let base = MicroTrace::base_pc(0);
        let mut lead = None;
        let mut checked = 0;
        for rec in trace.conditionals() {
            if rec.pc == base {
                lead = Some(rec.taken);
            } else if rec.pc == base + 4 {
                assert_eq!(Some(rec.taken), lead);
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn composition_interleaves_all_patterns() {
        let trace = MicroTrace::new(2)
            .with(MicroPattern::Loop { trip: 5 })
            .with(MicroPattern::Biased { taken_rate: 0.99 })
            .with(MicroPattern::InPath)
            .generate(5_000);
        let stats = bp_trace::TraceStats::of(&trace);
        assert!(stats.static_conditional >= 5, "{stats:?}");
        assert!(stats.other_transfers > 0, "in-path pattern records calls");
        // Deterministic.
        let again = MicroTrace::new(2)
            .with(MicroPattern::Loop { trip: 5 })
            .with(MicroPattern::Biased { taken_rate: 0.99 })
            .with(MicroPattern::InPath)
            .generate(5_000);
        assert_eq!(trace, again);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_periodic_rejected() {
        let _ = MicroTrace::new(0).with(MicroPattern::Periodic { pattern: vec![] });
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_composition_rejected() {
        let _ = MicroTrace::new(0).generate(10);
    }
}

//! `compress` analog: an LZW compressor (open-addressing dictionary
//! hashing) and decompressor, run on seeded Markov text with a verified
//! round trip.
//!
//! Branch profile (mirrors the original `compress`/`uncompress` hot
//! loops): the dictionary-probe hit test dominates the encode side and is
//! biased by input repetitiveness; probe-collision loops add short
//! data-dependent runs; code-width growth and table-reset tests are rare
//! and strongly biased. The decode side contributes chain-walk loops
//! whose trip counts are the match lengths — short, repetitive runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0010_0000;

// Static branch sites.
const PC_INPUT_LOOP: Pc = BASE; // backward: more input?
const PC_PROBE_HIT: Pc = BASE + 0x9e4; // dictionary probe matched
const PC_PROBE_EMPTY: Pc = BASE + 2 * 0x9e4; // probe slot empty (miss)
const PC_PROBE_LOOP: Pc = BASE + 3 * 0x9e4; // backward: keep probing
const PC_TABLE_FULL: Pc = BASE + 4 * 0x9e4; // dictionary at capacity
const PC_WIDTH_GROW: Pc = BASE + 5 * 0x9e4; // output code width must grow
const PC_FLUSH_BITS: Pc = BASE + 6 * 0x9e4; // bit buffer has a full byte
const PC_FLUSH_LOOP: Pc = BASE + 7 * 0x9e4; // backward: drain buffer
const PC_RATIO_CHECK: Pc = BASE + 8 * 0x9e4; // compression-ratio reset probe
const PC_DEC_LOOP: Pc = BASE + 9 * 0x9e4; // backward: more codes to decode?
const PC_DEC_KNOWN: Pc = BASE + 10 * 0x9e4; // code already in the table
const PC_DEC_CHAIN: Pc = BASE + 11 * 0x9e4; // backward: walk prefix chain
const PC_DEC_ROOT: Pc = BASE + 12 * 0x9e4; // chain reached a root symbol

const HASH_BITS: u32 = 12;
const HASH_SIZE: usize = 1 << HASH_BITS;
const MAX_CODES: u16 = 3000;
const ALPHABET: usize = 20;

/// Generates the compress trace in memory.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the compress trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0xC0));
    let mut rec = Recorder::with_sink(sink);
    while rec.conditional_len() < cfg.target_branches {
        let input = markov_text(&mut rng, 6000);
        let (codes, valid_prefix) = lzw_compress(&mut rec, &input);
        // Decompress (instrumented) and verify the round trip on the
        // prefix before any dictionary reset (resets are rare; mirroring
        // their timing exactly is the encoder's job, not the checker's).
        let decoded = lzw_decompress(&mut rec, &codes);
        assert!(
            decoded.len() >= valid_prefix && decoded[..valid_prefix] == input[..valid_prefix],
            "LZW round trip failed"
        );
    }
    rec.into_sink()
}

/// LZW decoder over the emitted code stream, instrumented. The string
/// table is the classic (prefix code, appended char) chain representation;
/// extracting a string walks the chain backwards — a short data-dependent
/// loop whose trip count is the match length.
fn lzw_decompress<S: TraceSink>(rec: &mut Recorder<S>, codes: &[u16]) -> Vec<u8> {
    let mut out = Vec::new();
    // chains[c] = (prefix code, last char); roots are the alphabet.
    let mut chains: Vec<(u16, u8)> = (0..ALPHABET as u16).map(|c| (u16::MAX, c as u8)).collect();

    /// Walks the chain for `code`, appending its string to `out`
    /// (instrumented); returns the string's first character.
    fn emit<S: TraceSink>(
        rec: &mut Recorder<S>,
        chains: &[(u16, u8)],
        code: u16,
        out: &mut Vec<u8>,
    ) -> u8 {
        let mut stack = Vec::new();
        let mut cur = code;
        loop {
            let (prefix, ch) = chains[cur as usize];
            stack.push(ch);
            if rec.cond(PC_DEC_ROOT, prefix == u16::MAX) {
                break;
            }
            cur = prefix;
            rec.loop_back(PC_DEC_CHAIN, true);
        }
        let first = *stack.last().expect("chain is never empty");
        while let Some(ch) = stack.pop() {
            out.push(ch);
        }
        first
    }

    let mut iter = codes.iter();
    let Some(&first_code) = iter.next() else {
        return out;
    };
    let mut prev = first_code;
    emit(rec, &chains, first_code, &mut out);
    let mut remaining = codes.len() - 1;
    for &code in iter {
        // The KwKwK special case: the code about to be defined.
        let known = rec.cond(PC_DEC_KNOWN, (code as usize) < chains.len());
        let first = if known {
            emit(rec, &chains, code, &mut out)
        } else {
            // KwKwK: the code being defined right now — its string is the
            // previous string plus that string's own first character.
            let f = emit(rec, &chains, prev, &mut out);
            out.push(f);
            f
        };
        if chains.len() < MAX_CODES as usize {
            chains.push((prev, first));
        }
        prev = code;
        remaining -= 1;
        rec.loop_back(PC_DEC_LOOP, remaining > 0);
    }
    out
}

/// Order-1 Markov text over a small alphabet with skewed transitions; the
/// skew is what makes dictionary probes hit often, like English text fed to
/// `compress`.
fn markov_text(rng: &mut StdRng, len: usize) -> Vec<u8> {
    // Each symbol strongly prefers a couple of successors.
    let favorites: Vec<(u8, u8)> = (0..ALPHABET)
        .map(|_| {
            (
                rng.gen_range(0..ALPHABET as u8),
                rng.gen_range(0..ALPHABET as u8),
            )
        })
        .collect();
    let mut out = Vec::with_capacity(len);
    let mut cur = rng.gen_range(0..ALPHABET as u8);
    for _ in 0..len {
        out.push(cur);
        let roll: f64 = rng.gen();
        let (fav1, fav2) = favorites[cur as usize];
        cur = if roll < 0.84 {
            fav1
        } else if roll < 0.96 {
            fav2
        } else {
            rng.gen_range(0..ALPHABET as u8)
        };
    }
    out
}

#[derive(Clone, Copy)]
struct Slot {
    key: u32, // (prefix << 8) | ch, or EMPTY
    code: u16,
}

const EMPTY: u32 = u32::MAX;

struct Dict {
    slots: Vec<Slot>,
    next_code: u16,
}

impl Dict {
    fn new() -> Self {
        Dict {
            slots: vec![
                Slot {
                    key: EMPTY,
                    code: 0
                };
                HASH_SIZE
            ],
            next_code: ALPHABET as u16,
        }
    }

    fn hash(key: u32) -> usize {
        (key.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
    }

    /// Open-addressing probe, instrumented: returns the code when present.
    fn probe<S: TraceSink>(&self, rec: &mut Recorder<S>, key: u32) -> Option<u16> {
        let mut idx = Self::hash(key);
        loop {
            let slot = self.slots[idx];
            if rec.cond(PC_PROBE_EMPTY, slot.key == EMPTY) {
                return None;
            }
            if rec.cond(PC_PROBE_HIT, slot.key == key) {
                return Some(slot.code);
            }
            idx = (idx + 1) & (HASH_SIZE - 1);
            // The probe loop's back-edge: taken while colliding.
            rec.loop_back(PC_PROBE_LOOP, true);
        }
    }

    fn insert(&mut self, key: u32) {
        let mut idx = Self::hash(key);
        while self.slots[idx].key != EMPTY {
            idx = (idx + 1) & (HASH_SIZE - 1);
        }
        self.slots[idx] = Slot {
            key,
            code: self.next_code,
        };
        self.next_code += 1;
    }
}

/// Compresses `input`, returning the emitted code stream and the length of
/// the input prefix decodable without mirroring dictionary resets (the
/// whole input when no reset fired).
fn lzw_compress<S: TraceSink>(rec: &mut Recorder<S>, input: &[u8]) -> (Vec<u16>, usize) {
    let mut out_hash = 0u64;
    let mut codes: Vec<u16> = Vec::new();
    let mut valid_prefix: Option<usize> = None;
    let mut dict = Dict::new();
    let mut bitbuf = 0u32;
    let mut bits = 0u32;
    let mut width = 9u32;
    let mut emitted = 0u64;
    let mut consumed = 0u64;

    let mut iter = input.iter();
    let mut prefix = u16::from(*iter.next().expect("input is non-empty"));
    consumed += 1;

    let mut remaining = input.len() - 1;
    for &ch in iter {
        consumed += 1;
        let key = (u32::from(prefix) << 8) | u32::from(ch);
        match dict.probe(rec, key) {
            Some(code) => {
                prefix = code;
            }
            None => {
                // Emit current prefix.
                codes.push(prefix);
                bitbuf |= u32::from(prefix) << bits;
                bits += width;
                emitted += 1;
                while rec.cond(PC_FLUSH_BITS, bits >= 8) {
                    out_hash = out_hash
                        .wrapping_mul(31)
                        .wrapping_add(u64::from(bitbuf & 0xFF));
                    bitbuf >>= 8;
                    bits -= 8;
                    rec.loop_back(PC_FLUSH_LOOP, bits >= 8);
                    if bits < 8 {
                        break;
                    }
                }
                if rec.cond(PC_TABLE_FULL, dict.next_code >= MAX_CODES) {
                    // Ratio check before resetting, like compress(1).
                    let ratio_bad = emitted * 12 > consumed * 10;
                    if rec.cond(PC_RATIO_CHECK, ratio_bad) {
                        dict = Dict::new();
                        width = 9;
                        // The decoder does not mirror resets; stop
                        // verifying here.
                        valid_prefix.get_or_insert(consumed as usize - 1);
                    }
                } else {
                    dict.insert(key);
                    if rec.cond(PC_WIDTH_GROW, dict.next_code.is_power_of_two()) {
                        width += 1;
                    }
                }
                prefix = u16::from(ch);
            }
        }
        remaining -= 1;
        rec.loop_back(PC_INPUT_LOOP, remaining > 0);
    }
    // Flush the final prefix so the stream is complete; fold the residual
    // bit buffer into the (unused, but honest) output checksum.
    codes.push(prefix);
    out_hash = out_hash.wrapping_add(u64::from(bitbuf));
    std::hint::black_box(out_hash);
    (codes, valid_prefix.unwrap_or(input.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::TraceStats;

    fn small() -> Trace {
        generate(&WorkloadConfig {
            seed: 1,
            target_branches: 20_000,
        })
    }

    #[test]
    fn reaches_target_and_is_deterministic() {
        let a = small();
        let b = small();
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig {
            seed: 1,
            target_branches: 5_000,
        });
        let b = generate(&WorkloadConfig {
            seed: 2,
            target_branches: 5_000,
        });
        assert_ne!(a, b);
    }

    #[test]
    fn branch_mix_is_plausible() {
        let t = small();
        let stats = TraceStats::of(&t);
        // Several distinct static sites, a healthy taken rate, and real
        // back-edges.
        assert!(stats.static_conditional >= 8, "{stats:?}");
        assert!(
            stats.taken_rate() > 0.3 && stats.taken_rate() < 0.95,
            "{stats:?}"
        );
        assert!(stats.backward > 0);
    }
}

//! Synthetic SPECint95-analog workloads.
//!
//! The paper traces the eight SPECint95 benchmarks to completion (Table 1).
//! Those binaries and inputs are not redistributable, so this crate provides
//! one deterministic *miniature program* per benchmark, written in ordinary
//! Rust whose real control flow is recorded through [`bp_trace::Recorder`].
//! Each program is designed around the branch-behavior profile that made its
//! namesake interesting to the paper:
//!
//! | Workload | Modeled after | Dominant branch behavior |
//! |---|---|---|
//! | [`Benchmark::Compress`] | compress (LZW) | hash-probe hits/misses, biased encode tests |
//! | [`Benchmark::Gcc`] | gcc | many static branches, correlated pass guards |
//! | [`Benchmark::Go`] | go | weakly biased, data-dependent evaluations |
//! | [`Benchmark::Ijpeg`] | ijpeg | regular nested block loops, quantizer bias |
//! | [`Benchmark::M88ksim`] | m88ksim | decode dispatch, strongly biased checks |
//! | [`Benchmark::Perl`] | perl | interpreter dispatch, string-scan patterns |
//! | [`Benchmark::Vortex`] | vortex | validation checks, >99% biased |
//! | [`Benchmark::Xlisp`] | xlisp | recursive eval, call-path correlation |
//!
//! Traces are deterministic functions of [`WorkloadConfig`] (seed + target
//! length), so every analysis is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use bp_workloads::{Benchmark, WorkloadConfig};
//!
//! let cfg = WorkloadConfig { target_branches: 5_000, ..WorkloadConfig::default() };
//! let trace = Benchmark::Compress.generate(&cfg);
//! assert!(trace.conditional_count() >= 5_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod gcc;
mod go;
mod ijpeg;
mod m88ksim;
pub mod micro;
mod perl;
mod vortex;
mod xlisp;

use serde::{Deserialize, Serialize};

use bp_trace::io::TraceIoError;
use bp_trace::{Trace, TraceSink, TraceSource};

/// Parameters of a workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed; each benchmark mixes in its own salt, so the same seed
    /// gives unrelated streams across benchmarks.
    pub seed: u64,
    /// The workload repeats its program on fresh data until at least this
    /// many dynamic conditional branches are recorded.
    pub target_branches: usize,
}

impl Default for WorkloadConfig {
    /// Seed `0xEC0_1998`, 200k conditional branches — large enough for
    /// stable accuracy estimates, small enough for quick experiment runs.
    /// Scale `target_branches` up for paper-sized runs.
    fn default() -> Self {
        WorkloadConfig {
            seed: 0xEC0_1998,
            target_branches: 200_000,
        }
    }
}

impl WorkloadConfig {
    /// Returns a copy with a different target length.
    pub fn with_target(mut self, target_branches: usize) -> Self {
        self.target_branches = target_branches;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The eight SPECint95-analog benchmarks (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// LZW text compressor (models `compress` on `test.in`).
    Compress,
    /// Optimizing-compiler pass pipeline (models `gcc` on `jump.i`).
    Gcc,
    /// Game-position evaluator (models `go` on `2stone9.in`).
    Go,
    /// Block image coder (models `ijpeg` on `specmun.ppm`).
    Ijpeg,
    /// Microprocessor simulator (models `m88ksim` on `dcrand.train.big`).
    M88ksim,
    /// Script interpreter (models `perl` on `scrabbl.pl`).
    Perl,
    /// Object-database transactions (models `vortex` on `vortex.in`).
    Vortex,
    /// Lisp interpreter (models `xlisp` on `train.lsp`).
    Xlisp,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Ijpeg,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Vortex,
        Benchmark::Xlisp,
    ];

    /// Benchmark name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Vortex => "vortex",
            Benchmark::Xlisp => "xlisp",
        }
    }

    /// The abbreviated label used on the paper's figure x-axes.
    pub fn short_name(self) -> &'static str {
        match self {
            Benchmark::Compress => "com",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijp",
            Benchmark::M88ksim => "m88",
            Benchmark::Perl => "per",
            Benchmark::Vortex => "vor",
            Benchmark::Xlisp => "xli",
        }
    }

    /// The input data set the paper used (Table 1) — informational.
    pub fn paper_input(self) -> &'static str {
        match self {
            Benchmark::Compress => "test.in",
            Benchmark::Gcc => "jump.i",
            Benchmark::Go => "2stone9.in",
            Benchmark::Ijpeg => "specmun.ppm",
            Benchmark::M88ksim => "dcrand.train.big",
            Benchmark::Perl => "scrabbl.pl",
            Benchmark::Vortex => "vortex.in",
            Benchmark::Xlisp => "train.lsp",
        }
    }

    /// Dynamic conditional branch count the paper reports (Table 1).
    pub fn paper_branch_count(self) -> u64 {
        match self {
            Benchmark::Compress => 10_661_855,
            Benchmark::Gcc => 25_903_086,
            Benchmark::Go => 17_925_171,
            Benchmark::Ijpeg => 20_441_307,
            Benchmark::M88ksim => 16_719_523,
            Benchmark::Perl => 10_570_887,
            Benchmark::Vortex => 33_853_896,
            Benchmark::Xlisp => 26_422_387,
        }
    }

    /// Parses a full or abbreviated benchmark name.
    pub fn parse(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == name || b.short_name() == name)
    }

    /// Generates the benchmark's branch trace in memory.
    pub fn generate(self, cfg: &WorkloadConfig) -> Trace {
        match self {
            Benchmark::Compress => compress::generate(cfg),
            Benchmark::Gcc => gcc::generate(cfg),
            Benchmark::Go => go::generate(cfg),
            Benchmark::Ijpeg => ijpeg::generate(cfg),
            Benchmark::M88ksim => m88ksim::generate(cfg),
            Benchmark::Perl => perl::generate(cfg),
            Benchmark::Vortex => vortex::generate(cfg),
            Benchmark::Xlisp => xlisp::generate(cfg),
        }
    }

    /// Streams the benchmark's branch trace into `sink` chunk by chunk and
    /// returns the sink. The record sequence is identical to
    /// [`Benchmark::generate`]; the trace never exists as one allocation,
    /// so targets far beyond memory (100M–1B branches) are fine when the
    /// sink is itself bounded (a counting sink, an artifact builder, an
    /// on-disk writer).
    pub fn generate_into<S: TraceSink>(self, cfg: &WorkloadConfig, sink: S) -> S {
        match self {
            Benchmark::Compress => compress::generate_into(cfg, sink),
            Benchmark::Gcc => gcc::generate_into(cfg, sink),
            Benchmark::Go => go::generate_into(cfg, sink),
            Benchmark::Ijpeg => ijpeg::generate_into(cfg, sink),
            Benchmark::M88ksim => m88ksim::generate_into(cfg, sink),
            Benchmark::Perl => perl::generate_into(cfg, sink),
            Benchmark::Vortex => vortex::generate_into(cfg, sink),
            Benchmark::Xlisp => xlisp::generate_into(cfg, sink),
        }
    }

    /// A replayable [`TraceSource`] that *regenerates* this benchmark on
    /// every scan instead of storing anything: determinism makes the
    /// workload itself the storage. Memory per scan is one record chunk.
    pub fn source(self, cfg: WorkloadConfig) -> WorkloadSource {
        WorkloadSource {
            benchmark: self,
            cfg,
        }
    }
}

/// Regenerating trace source (see [`Benchmark::source`]).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSource {
    benchmark: Benchmark,
    cfg: WorkloadConfig,
}

impl WorkloadSource {
    /// The benchmark this source regenerates.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The generation parameters.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }
}

impl TraceSource for WorkloadSource {
    fn scan(&self, visit: &mut dyn FnMut(&[bp_trace::BranchRecord])) -> Result<(), TraceIoError> {
        struct Fwd<'a>(&'a mut dyn FnMut(&[bp_trace::BranchRecord]));
        impl TraceSink for Fwd<'_> {
            fn chunk(&mut self, records: &[bp_trace::BranchRecord]) {
                (self.0)(records);
            }
        }
        self.benchmark.generate_into(&self.cfg, Fwd(visit));
        Ok(())
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::parse(s).ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

/// Error returned when a benchmark name does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl std::fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark name: {:?}", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

/// Mixes the config seed with a per-benchmark salt; used by every workload
/// so the same user seed yields unrelated streams per benchmark.
pub(crate) fn salted_seed(cfg: &WorkloadConfig, salt: u64) -> u64 {
    cfg.seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()), Some(b));
            assert_eq!(Benchmark::parse(b.short_name()), Some(b));
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert_eq!(Benchmark::parse("nope"), None);
        assert!("nope".parse::<Benchmark>().is_err());
        let err = "nope".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn table1_counts_present() {
        let total: u64 = Benchmark::ALL.iter().map(|b| b.paper_branch_count()).sum();
        assert_eq!(total, 162_498_112);
    }

    #[test]
    fn config_builders() {
        let cfg = WorkloadConfig::default().with_seed(7).with_target(123);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.target_branches, 123);
    }

    #[test]
    fn salted_seeds_differ() {
        let cfg = WorkloadConfig::default();
        assert_ne!(salted_seed(&cfg, 1), salted_seed(&cfg, 2));
    }

    #[test]
    fn streamed_generation_matches_materialized() {
        let cfg = WorkloadConfig {
            seed: 5,
            target_branches: 10_000,
        };
        for b in [Benchmark::Compress, Benchmark::Xlisp] {
            let direct = b.generate(&cfg);
            let streamed = b
                .generate_into(&cfg, bp_trace::TraceBuffer::new())
                .into_trace();
            assert_eq!(direct, streamed, "{b}");

            let mut via_source = Vec::new();
            b.source(cfg)
                .scan(&mut |chunk| via_source.extend_from_slice(chunk))
                .unwrap();
            assert_eq!(direct.records(), &via_source[..], "{b} via source");
        }
    }
}

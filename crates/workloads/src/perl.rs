//! `perl` analog: a stack bytecode interpreter running generated scripts
//! heavy on string scanning (the paper's input is a Scrabble solver).
//!
//! Branch profile: dispatch-chain tests biased by opcode frequency,
//! short string-scan loops with repeating trip counts, and hash-probe
//! chains — highly predictable overall (paper: gshare 97.8%) with clear
//! per-address patterns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bp_trace::{Pc, Recorder, Trace, TraceBuffer, TraceSink};

use crate::{salted_seed, WorkloadConfig};

const BASE: Pc = 0x0060_0000;

const PC_DISPATCH_LOOP: Pc = BASE;
const PC_IS_PUSH: Pc = BASE + 0x9e4;
const PC_IS_ARITH: Pc = BASE + 2 * 0x9e4;
const PC_IS_MATCH: Pc = BASE + 3 * 0x9e4;
const PC_IS_JUMP: Pc = BASE + 4 * 0x9e4;
const PC_JUMP_TAKEN: Pc = BASE + 5 * 0x9e4;
const PC_MATCH_CHAR: Pc = BASE + 6 * 0x9e4;
const PC_MATCH_LOOP: Pc = BASE + 7 * 0x9e4;
const PC_MATCH_FOUND: Pc = BASE + 8 * 0x9e4;
const PC_HASH_HIT: Pc = BASE + 9 * 0x9e4;
const PC_HASH_LOOP: Pc = BASE + 10 * 0x9e4;
const PC_ARITH_OVERFLOW: Pc = BASE + 11 * 0x9e4;
const PC_STACK_GROW: Pc = BASE + 12 * 0x9e4;
const PC_WORD_LEN_GT4: Pc = BASE + 13 * 0x9e4;
const PC_SCORE_BONUS: Pc = BASE + 14 * 0x9e4;
const PC_SCORE_DOUBLE: Pc = BASE + 15 * 0x9e4;

#[derive(Debug, Clone, Copy)]
enum Bytecode {
    Push(i32),
    Add,
    Sub,
    /// Scan the dictionary word at `word` for the current rack letter.
    Match {
        word: u8,
    },
    /// Jump back `off` ops while the counter is positive.
    LoopJump {
        off: u8,
    },
    /// Decrement the loop counter.
    Dec,
}

struct Script {
    code: Vec<Bytecode>,
    words: Vec<Vec<u8>>,
}

fn gen_script(rng: &mut StdRng) -> Script {
    // A dictionary of letter-tile words of varied lengths.
    let words: Vec<Vec<u8>> = (0..12)
        .map(|_| {
            let len = rng.gen_range(3..9);
            (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect()
        })
        .collect();

    // Script shape: init counter, then a loop body of pushes/arith/matches,
    // closed by Dec + LoopJump — a scripted scoring loop.
    let mut code = vec![Bytecode::Push(rng.gen_range(5..25))];
    let body_len = rng.gen_range(3..7);
    for _ in 0..body_len {
        match rng.gen_range(0..10) {
            0..=3 => code.push(Bytecode::Push(rng.gen_range(-5..30))),
            4..=5 => code.push(Bytecode::Add),
            6 => code.push(Bytecode::Sub),
            _ => code.push(Bytecode::Match {
                word: rng.gen_range(0..12),
            }),
        }
    }
    code.push(Bytecode::Dec);
    code.push(Bytecode::LoopJump {
        off: (body_len + 1) as u8,
    });
    Script { code, words }
}

fn run_script<S: TraceSink>(rec: &mut Recorder<S>, script: &Script, rng: &mut StdRng) {
    let mut stack: Vec<i32> = vec![0];
    let mut counter = 0i32;
    let mut pc = 0usize;
    let mut steps = 0u32;
    // Tiny symbol-table of seen letters, probed per match (hash-flavored).
    let mut letter_seen = [false; 26];

    while pc < script.code.len() && steps < 5000 {
        steps += 1;
        let op = script.code[pc];
        if rec.cond(PC_IS_PUSH, matches!(op, Bytecode::Push(_) | Bytecode::Dec)) {
            match op {
                Bytecode::Push(v) => {
                    if rec.cond(PC_STACK_GROW, stack.len() >= stack.capacity()) {
                        stack.reserve(8);
                    }
                    stack.push(v);
                    counter = v; // last push doubles as the loop counter
                }
                Bytecode::Dec => counter -= 1,
                _ => unreachable!(),
            }
        } else if rec.cond(PC_IS_ARITH, matches!(op, Bytecode::Add | Bytecode::Sub)) {
            let b = stack.pop().unwrap_or(0);
            let a = stack.pop().unwrap_or(0);
            let v = match op {
                Bytecode::Add => a.wrapping_add(b),
                _ => a.wrapping_sub(b),
            };
            rec.cond(PC_ARITH_OVERFLOW, v.abs() > 1_000_000);
            stack.push(v);
        } else if rec.cond(PC_IS_MATCH, matches!(op, Bytecode::Match { .. })) {
            if let Bytecode::Match { word } = op {
                let ch = rng.gen_range(b'a'..=b'z');
                let w = &script.words[word as usize];
                rec.cond(PC_WORD_LEN_GT4, w.len() > 4);
                // Letter-table probe: second and later probes of a letter
                // hit (figure 1b correlation with the first probe).
                let idx = (ch - b'a') as usize;
                let mut hops = 0;
                while !rec.cond(PC_HASH_HIT, letter_seen[(idx + hops) % 26] || hops == 2) {
                    hops += 1;
                    rec.loop_back(PC_HASH_LOOP, true);
                }
                letter_seen[idx] = true;
                // The string scan: fixed word => fixed trip count pattern.
                let mut found = false;
                for (i, &c) in w.iter().enumerate() {
                    if rec.cond(PC_MATCH_CHAR, c == ch) {
                        found = true;
                    }
                    rec.loop_back(PC_MATCH_LOOP, i + 1 < w.len());
                }
                rec.cond(PC_MATCH_FOUND, found);
                // Scoring follows the match result: perfectly correlated
                // with PC_MATCH_FOUND (global predictors see it for free;
                // the branch's own history is as noisy as the data).
                if rec.cond(PC_SCORE_BONUS, found) {
                    stack.push(w.len() as i32);
                }
                rec.cond(PC_SCORE_DOUBLE, found && w.len() > 5);
                stack.push(found as i32);
            }
        } else if rec.cond(PC_IS_JUMP, matches!(op, Bytecode::LoopJump { .. })) {
            if let Bytecode::LoopJump { off } = op {
                if rec.cond(PC_JUMP_TAKEN, counter > 0) {
                    pc -= off as usize;
                    rec.loop_back(PC_DISPATCH_LOOP, true);
                    continue;
                }
            }
        }
        pc += 1;
        rec.loop_back(PC_DISPATCH_LOOP, pc < script.code.len());
    }
}

/// Generates the perl trace.
pub fn generate(cfg: &WorkloadConfig) -> Trace {
    generate_into(cfg, TraceBuffer::new()).into_trace()
}

/// Streams the perl trace into `sink`, chunk by chunk.
pub fn generate_into<S: TraceSink>(cfg: &WorkloadConfig, sink: S) -> S {
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg, 0xBE7));
    let mut rec = Recorder::with_sink(sink);
    while rec.conditional_len() < cfg.target_branches {
        // Like the Scrabble solver scoring successive racks: the same
        // script body runs repeatedly over its data.
        let script = gen_script(&mut rng);
        for _ in 0..3 {
            run_script(&mut rec, &script, &mut rng);
            if rec.conditional_len() >= cfg.target_branches {
                break;
            }
        }
    }
    rec.into_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{BranchProfile, TraceStats};

    #[test]
    fn deterministic_and_reaches_target() {
        let cfg = WorkloadConfig {
            seed: 13,
            target_branches: 20_000,
        };
        let a = generate(&cfg);
        assert!(a.conditional_count() >= 20_000);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn interpreter_profile() {
        let t = generate(&WorkloadConfig {
            seed: 13,
            target_branches: 40_000,
        });
        let stats = TraceStats::of(&t);
        assert!(stats.static_conditional >= 12, "{stats:?}");
        let profile = BranchProfile::of(&t);
        // Predictable but not trivially static (dispatch chain mixes).
        assert!(profile.ideal_static_accuracy() > 0.6);
        assert!(profile.ideal_static_accuracy() < 0.99);
    }
}

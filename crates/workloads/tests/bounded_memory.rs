//! Regression test for the streaming pipeline's memory model: pushing a
//! paper-scale branch count through `generate_into` must keep the peak
//! resident footprint at chunk scale — the trace must never exist in
//! memory as one giant `Vec<BranchRecord>`.
//!
//! This lives in its own integration-test binary so no sibling test's
//! allocations inflate the process-wide `VmHWM` high-water mark.

use bp_trace::CountingSink;
use bp_workloads::{Benchmark, WorkloadConfig};

/// Peak resident set size of this process in KiB (Linux `VmHWM`).
#[cfg(target_os = "linux")]
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
#[cfg(target_os = "linux")]
fn paper_scale_generation_stays_at_chunk_scale() {
    // 20M branch records materialized would be ≥ 480 MiB (24 bytes each);
    // the chunked sink path hands off 64Ki-record chunks and should keep
    // the whole process comfortably under this cap.
    const TARGET: usize = 20_000_000;
    const CAP_KIB: u64 = 256 * 1024;

    let cfg = WorkloadConfig {
        seed: 0x5CA1E,
        target_branches: TARGET,
    };
    let counts = Benchmark::M88ksim.generate_into(&cfg, CountingSink::default());
    assert!(
        counts.conditionals >= TARGET as u64,
        "generator stopped early: {} conditionals",
        counts.conditionals
    );
    assert!(counts.records >= counts.conditionals);

    let peak = peak_rss_kib().expect("VmHWM available on Linux");
    assert!(
        peak < CAP_KIB,
        "peak RSS {peak} KiB at {TARGET} branches — a full-trace \
         materialization would need ≥ {} KiB; streaming must stay bounded",
        (TARGET * std::mem::size_of::<bp_trace::BranchRecord>()) / 1024
    );
}

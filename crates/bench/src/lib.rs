//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `predictor_throughput` — branches/second for every predictor.
//! * `tables` — regeneration cost of Tables 1–3.
//! * `figures` — regeneration cost of Figures 4–9.
//! * `ablations` — oracle search strategy, tagging schemes, counter
//!   configuration, and trace-length scaling (the design choices DESIGN.md
//!   §5 calls out).
//! * `streams_parallel` — the sharded streaming executor and parallel
//!   classification sweep at 1/2/4/8 shards.
//!
//! Benchmarks run at deliberately small trace targets so the suite
//! completes in minutes; the `repro` binary is the tool for full-scale
//! reproduction runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bp_experiments::ExperimentConfig;
use bp_trace::Trace;
use bp_workloads::{Benchmark, WorkloadConfig};

/// Trace length used by the benchmark suite.
pub const BENCH_TARGET: usize = 8_000;

/// Workload configuration for benches.
pub fn bench_workload_config() -> WorkloadConfig {
    WorkloadConfig::default().with_target(BENCH_TARGET)
}

/// Experiment configuration for benches.
pub fn bench_experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        workload: bench_workload_config(),
        ..ExperimentConfig::default()
    }
}

/// A representative trace (gcc: the largest static footprint).
pub fn bench_trace() -> Trace {
    Benchmark::Gcc.generate(&bench_workload_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_sizes() {
        assert_eq!(bench_workload_config().target_branches, BENCH_TARGET);
        assert!(bench_trace().conditional_count() >= BENCH_TARGET);
        assert_eq!(
            bench_experiment_config().workload.target_branches,
            BENCH_TARGET
        );
    }
}

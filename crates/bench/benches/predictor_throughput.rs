//! Predictor throughput: time to simulate every predictor over a fixed
//! workload trace (lower = faster predictor implementation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bp_bench::bench_trace;
use bp_predictors::{
    simulate, BlockPattern, Gas, Gshare, GshareInterferenceFree, Hybrid, KthAgo, LoopPredictor,
    Pas, PasInterferenceFree, PathBased, Predictor, Smith, StaticTaken,
};

fn bench_predictors(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("predictor_throughput");
    group.sample_size(20);

    macro_rules! bench {
        ($name:expr, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let mut p = $make;
                    black_box(simulate(&mut p, black_box(&trace)))
                })
            });
        };
    }

    bench!("static_taken", StaticTaken);
    bench!("smith", Smith::default());
    bench!("gshare", Gshare::default());
    bench!("if_gshare", GshareInterferenceFree::default());
    bench!("gas", Gas::default());
    bench!("pas", Pas::default());
    bench!("if_pas", PasInterferenceFree::default());
    bench!("path_based", PathBased::default());
    bench!("loop", LoopPredictor::new());
    bench!("kth_ago", KthAgo::new(8));
    bench!("block_pattern", BlockPattern::new());
    bench!(
        "hybrid_gshare_pas",
        Hybrid::new(Gshare::default(), Pas::default(), 12)
    );

    // Sanity: the names stay distinct (catches copy-paste in the table).
    let names: Vec<String> = vec![
        StaticTaken.name(),
        Smith::default().name(),
        Gshare::default().name(),
    ];
    assert_eq!(
        names.len(),
        names.iter().collect::<std::collections::HashSet<_>>().len()
    );

    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);

//! `oracle_kernel`: the §3.4 selective-history scoring kernel — word-wise
//! bit-plane scoring vs the digit-at-a-time reference scorer
//! (`bp_core::reference`, built here via the `reference-scorer` feature) —
//! driven through the identical per-branch subset search on the same
//! fixed synthetic matrices. The two produce bit-identical selections
//! (the property tests in `bp-core` pin that); this bench measures the
//! kernel's speedup.
//!
//! Two workloads bracket the kernel's operating range: `gcc` (large
//! static footprint, few executions per branch — per-branch overhead
//! dominates) and `m88ksim` (small footprint, long strongly-biased
//! columns — the uniform-run word fast path dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::bench_workload_config;
use bp_core::{reference, OracleConfig, OracleSelector, OutcomeMatrix, TagCandidates};
use bp_workloads::Benchmark;

fn bench_oracle_kernel(c: &mut Criterion) {
    let cfg = OracleConfig {
        candidate_cap: 12,
        ..OracleConfig::default()
    };
    let mut group = c.benchmark_group("oracle_kernel");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for benchmark in [Benchmark::Gcc, Benchmark::M88ksim] {
        let trace = benchmark.generate(&bench_workload_config());
        let candidates = TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &candidates, cfg.window);

        let label = benchmark.short_name();
        group.bench_function(BenchmarkId::new("bit_plane", label), |b| {
            b.iter(|| {
                for (_, bm) in matrix.iter() {
                    black_box(OracleSelector::select_branch(bm, &cfg));
                }
            })
        });
        group.bench_function(BenchmarkId::new("reference", label), |b| {
            b.iter(|| {
                for (_, bm) in matrix.iter() {
                    black_box(reference::select_branch(bm, &cfg));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_kernel);
criterion_main!(benches);

//! `oracle_kernel`: the §3.4 selective-history scoring kernel — word-wise
//! bit-plane scoring vs the digit-at-a-time reference scorer
//! (`bp_core::reference`, built here via the `reference-scorer` feature) —
//! driven through the identical per-branch subset search on the same
//! fixed synthetic matrices. The two produce bit-identical selections
//! (the property tests in `bp-core` pin that); this bench measures the
//! kernel's speedup.
//!
//! Two workloads bracket the kernel's operating range: `gcc` (large
//! static footprint, few executions per branch — per-branch overhead
//! dominates) and `m88ksim` (small footprint, long strongly-biased
//! columns — the uniform-run word fast path dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::bench_workload_config;
use bp_core::{reference, OracleConfig, OracleSelector, OutcomeMatrix, TagCandidates};
use bp_workloads::Benchmark;

/// The subset shapes the greedy search probes: empty, each singleton,
/// adjacent pairs, and one spread triple.
fn subset_battery(n: usize) -> Vec<Vec<usize>> {
    let mut subsets: Vec<Vec<usize>> = vec![Vec::new()];
    subsets.extend((0..n).map(|c| vec![c]));
    subsets.extend((1..n).map(|c| vec![c - 1, c]));
    if n >= 3 {
        subsets.push(vec![0, n / 2, n - 1]);
    }
    subsets
}

fn bench_oracle_kernel(c: &mut Criterion) {
    let cfg = OracleConfig {
        candidate_cap: 12,
        ..OracleConfig::default()
    };
    let mut group = c.benchmark_group("oracle_kernel");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for benchmark in [Benchmark::Gcc, Benchmark::M88ksim] {
        let trace = benchmark.generate(&bench_workload_config());
        let candidates = TagCandidates::collect(&trace, cfg.window, cfg.candidate_cap);
        let matrix = OutcomeMatrix::build(&trace, &candidates, cfg.window);

        let label = benchmark.short_name();
        group.bench_function(BenchmarkId::new("bit_plane", label), |b| {
            b.iter(|| {
                for (_, bm) in matrix.iter() {
                    black_box(OracleSelector::select_branch(bm, &cfg));
                }
            })
        });
        group.bench_function(BenchmarkId::new("reference", label), |b| {
            b.iter(|| {
                for (_, bm) in matrix.iter() {
                    black_box(reference::select_branch(bm, &cfg));
                }
            })
        });
        // The tag-set scorer in isolation: runtime-dispatched (AVX2 on
        // capable hosts) vs the portable scalar twin, over the subset
        // shapes the greedy search actually probes. Bit-identical (the
        // conformance `simd` suite pins that); this pair measures the
        // plane-replay vector speedup.
        group.bench_function(BenchmarkId::new("tag_set_dispatch", label), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, bm) in matrix.iter() {
                    for cols in subset_battery(bm.tags().len()) {
                        acc += bp_core::score_tag_set(black_box(bm), &cols, cfg.counter);
                    }
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("tag_set_scalar", label), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, bm) in matrix.iter() {
                    for cols in subset_battery(bm.tags().len()) {
                        acc += bp_core::score_tag_set_scalar(black_box(bm), &cols, cfg.counter);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_kernel);
criterion_main!(benches);

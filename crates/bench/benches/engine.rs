//! Benches for the evaluation engine's single-pass batched simulation:
//! `simulate_batch` over N predictors vs N separate `simulate_per_branch`
//! passes over the same trace. The batch walks the trace (and decodes each
//! branch site) once, so it should win as N grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::bench_trace;
use bp_experiments::ExperimentConfig;
use bp_predictors::{
    simulate_batch, simulate_per_branch, Gshare, GshareInterferenceFree, Pas, PasInterferenceFree,
    Predictor,
};

/// The four standard predictors the engine prewarms, fresh.
fn standard_predictors(cfg: &ExperimentConfig) -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Gshare::new(cfg.gshare_bits)),
        Box::new(GshareInterferenceFree::new(cfg.gshare_bits)),
        Box::<Pas>::default(),
        Box::new(PasInterferenceFree::new(cfg.classifier.pas_history_bits)),
    ]
}

fn bench_batch_vs_serial(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let trace = bench_trace();
    let mut group = c.benchmark_group("batch_vs_serial");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for n in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter(|| {
                let mut out = Vec::with_capacity(n);
                for mut p in standard_predictors(&cfg).into_iter().take(n) {
                    out.push(simulate_per_branch(p.as_mut(), &trace));
                }
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, &n| {
            b.iter(|| {
                let mut predictors: Vec<Box<dyn Predictor>> =
                    standard_predictors(&cfg).into_iter().take(n).collect();
                black_box(simulate_batch(&mut predictors, &trace))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_batch_vs_serial);
criterion_main!(benches);

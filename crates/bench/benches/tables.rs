//! Regeneration benches for the paper's tables: one bench per table, each
//! running the full experiment pipeline at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::bench_experiment_config;
use bp_experiments::{table1, table2, table3, TraceSet};

fn bench_tables(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("table1_workloads", |b| {
        b.iter(|| {
            let mut traces = TraceSet::new(cfg.workload);
            black_box(table1::run(&cfg, &mut traces))
        })
    });

    group.bench_function("table2_gshare_corr", |b| {
        let mut traces = TraceSet::new(cfg.workload);
        traces.generate_all();
        b.iter(|| black_box(table2::run(&cfg, &mut traces)))
    });

    group.bench_function("table3_pas_loop", |b| {
        let mut traces = TraceSet::new(cfg.workload);
        traces.generate_all();
        b.iter(|| black_box(table3::run(&cfg, &mut traces)))
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

//! Regeneration benches for the paper's tables: one bench per table, each
//! running the full experiment pipeline at bench scale.
//!
//! Each iteration gets a *fresh* engine over shared pre-generated traces,
//! so the numbers measure experiment compute (not trace generation, and
//! not cache hits from a previous iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use bp_bench::bench_experiment_config;
use bp_experiments::{table1, table2, table3, Engine, TraceSet};

fn bench_tables(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("table1_workloads", |b| {
        b.iter(|| {
            let engine = Engine::new(TraceSet::new(cfg.workload), 1);
            black_box(table1::run(&cfg, &engine))
        })
    });

    let traces = Arc::new(TraceSet::new(cfg.workload));
    traces.generate_all(1);

    group.bench_function("table2_gshare_corr", |b| {
        b.iter(|| {
            let engine = Engine::new(Arc::clone(&traces), 1);
            black_box(table2::run(&cfg, &engine))
        })
    });

    group.bench_function("table3_pas_loop", |b| {
        b.iter(|| {
            let engine = Engine::new(Arc::clone(&traces), 1);
            black_box(table3::run(&cfg, &engine))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

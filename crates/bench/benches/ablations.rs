//! Ablation benches for the design decisions called out in DESIGN.md §5:
//! oracle search strategy, tagging schemes, counter configuration, and
//! trace-length scaling. Each variant is timed; the companion `ablate`
//! binary in `bp-experiments` reports the accuracy side of the trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::{bench_trace, bench_workload_config};
use bp_core::{OracleConfig, OracleSelector, OutcomeMatrix, SearchStrategy, TagCandidates};
use bp_predictors::{simulate, Gshare, SaturatingCounter};
use bp_trace::TagScheme;
use bp_workloads::Benchmark;

fn bench_oracle_search(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("ablate_oracle");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    let base = OracleConfig {
        candidate_cap: 12,
        ..OracleConfig::default()
    };
    let candidates = TagCandidates::collect(&trace, base.window, base.candidate_cap);
    let matrix = OutcomeMatrix::build(&trace, &candidates, base.window);

    group.bench_function("greedy", |b| {
        b.iter(|| black_box(OracleSelector::analyze_matrix(&matrix, &base)))
    });
    group.bench_function("exhaustive", |b| {
        let cfg = OracleConfig {
            search: SearchStrategy::Exhaustive { max_candidates: 12 },
            ..base
        };
        b.iter(|| black_box(OracleSelector::analyze_matrix(&matrix, &cfg)))
    });
    group.finish();
}

fn bench_tagging_schemes(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("ablate_tagging");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for (label, schemes) in [
        ("occurrence_only", &[TagScheme::Occurrence][..]),
        ("iteration_only", &[TagScheme::Iteration][..]),
        ("both", &TagScheme::ALL[..]),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cands = TagCandidates::collect_with_schemes(&trace, 16, 32, schemes);
                black_box(OutcomeMatrix::build(&trace, &cands, 16))
            })
        });
    }
    group.finish();
}

fn bench_counter_config(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("ablate_counters");
    group.sample_size(20);

    for bits in [1u8, 2, 3] {
        group.bench_with_input(BenchmarkId::new("gshare_bits", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut p = Gshare::with_counter(14, SaturatingCounter::weakly_taken(bits));
                black_box(simulate(&mut p, &trace))
            })
        });
    }
    group.finish();
}

fn bench_trace_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_trace_len");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for scale in [1usize, 2, 4] {
        let cfg = bench_workload_config().with_target(bp_bench::BENCH_TARGET * scale);
        let trace = Benchmark::Go.generate(&cfg);
        group.bench_with_input(BenchmarkId::new("go_gshare", scale), &trace, |b, trace| {
            b.iter(|| black_box(simulate(&mut Gshare::default(), trace)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oracle_search,
    bench_tagging_schemes,
    bench_counter_config,
    bench_trace_length
);
criterion_main!(benches);

//! `classify_kernel`: the §4.1 per-address classification — the
//! bit-parallel kernel (packed outcome streams, shifted-XNOR k-ago sweep,
//! run-length loop/block replay, pattern-major IF-PAs) vs the per-record
//! reference classifier (`bp_core::reference`, built here via the
//! `reference-scorer` feature) on the same traces. The two produce
//! byte-identical `BranchClassScores` (the property tests in `bp-core`
//! pin that); this bench measures the kernel's speedup, plus the one-off
//! stream-packing pass the kernel amortizes across configurations.
//!
//! Two workloads bracket the kernel's operating range: `gcc` (large
//! static footprint, short streams — per-branch overhead and the PAs
//! scratch reset dominate) and `m88ksim` (small footprint, long
//! strongly-biased streams — long-run word scans and the k-ago popcount
//! loop dominate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::bench_workload_config;
use bp_core::{reference, Classifier, ClassifierConfig};
use bp_trace::BranchStreams;
use bp_workloads::Benchmark;

fn bench_classify_kernel(c: &mut Criterion) {
    let cfg = ClassifierConfig::default();
    let mut group = c.benchmark_group("classify_kernel");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    for benchmark in [Benchmark::Gcc, Benchmark::M88ksim] {
        let trace = benchmark.generate(&bench_workload_config());
        let streams = BranchStreams::of(&trace);

        let label = benchmark.short_name();
        group.bench_function(BenchmarkId::new("stream_build", label), |b| {
            b.iter(|| black_box(BranchStreams::of(black_box(&trace))))
        });
        group.bench_function(BenchmarkId::new("bit_parallel", label), |b| {
            b.iter(|| black_box(Classifier::classify_streams(black_box(&streams), &cfg)))
        });
        group.bench_function(BenchmarkId::new("reference", label), |b| {
            b.iter(|| black_box(reference::classify(black_box(&trace), &cfg)))
        });
        // The k-ago popcount sweep in isolation: runtime-dispatched
        // (AVX2 on capable hosts) vs the portable scalar twin. The two
        // are bit-identical (the conformance `simd` suite pins that);
        // this pair measures the vector speedup on long streams.
        group.bench_function(BenchmarkId::new("kago_dispatch", label), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, stream) in streams.iter() {
                    for k in 1..=cfg.max_period as usize {
                        acc += bp_core::kth_ago_correct(black_box(stream), k);
                    }
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("kago_scalar", label), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (_, stream) in streams.iter() {
                    for k in 1..=cfg.max_period as usize {
                        acc += bp_core::kth_ago_correct_scalar(black_box(stream), k);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify_kernel);
criterion_main!(benches);

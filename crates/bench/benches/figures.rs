//! Regeneration benches for the paper's figures: one bench per figure.
//!
//! Each iteration gets a *fresh* engine over shared pre-generated traces,
//! so the numbers measure experiment compute (not trace generation, and
//! not cache hits from a previous iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use bp_bench::bench_experiment_config;
use bp_experiments::{fig4, fig5, fig6, fig7, fig8, fig9, Engine, TraceSet};

fn bench_figures(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));

    let traces = Arc::new(TraceSet::new(cfg.workload));
    traces.generate_all(1);
    let fresh_engine = || Engine::new(Arc::clone(&traces), 1);

    group.bench_function("fig4_selective", |b| {
        b.iter(|| black_box(fig4::run(&cfg, &fresh_engine())))
    });
    group.bench_function("fig5_history_len", |b| {
        b.iter(|| black_box(fig5::run(&cfg, &fresh_engine())))
    });
    group.bench_function("fig6_classes", |b| {
        b.iter(|| black_box(fig6::run(&cfg, &fresh_engine())))
    });
    group.bench_function("fig7_best_gshare_pas", |b| {
        b.iter(|| black_box(fig7::run(&cfg, &fresh_engine())))
    });
    group.bench_function("fig8_best_classes", |b| {
        b.iter(|| black_box(fig8::run(&cfg, &fresh_engine())))
    });
    group.bench_function("fig9_percentile", |b| {
        b.iter(|| black_box(fig9::run(&cfg, &fresh_engine())))
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

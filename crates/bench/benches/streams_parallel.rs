//! `streams_parallel`: the sharded streaming executor and the parallel
//! classification sweep at 1/2/4/8 shards.
//!
//! `sharded_build` measures [`BranchStreams::from_source_sharded`] — the
//! broadcast executor that fans trace chunks out to per-PC-shard workers
//! and merges their disjoint partial streams; `classify_sweep` measures
//! [`Classifier::classify_streams_parallel`] — the branch-sharded k-ago
//! sweep and class replay over the packed streams. Both are bit-identical
//! to their serial twins for every shard count (the conformance
//! `parallel` suite pins that); this bench measures what the sharding
//! costs or buys at each count, which on a many-core host is the
//! per-phase scaling curve of the `scale --jobs N` pipeline.
//!
//! `m88ksim` is the workload: few static branches with long streams, the
//! regime where per-shard work dominates executor overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bp_bench::bench_workload_config;
use bp_core::{Classifier, ClassifierConfig};
use bp_trace::BranchStreams;
use bp_workloads::Benchmark;

fn bench_streams_parallel(c: &mut Criterion) {
    let cfg = ClassifierConfig::default();
    let mut group = c.benchmark_group("streams_parallel");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    let trace = Benchmark::M88ksim.generate(&bench_workload_config());
    let streams = BranchStreams::of(&trace);

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("sharded_build", shards), |b| {
            b.iter(|| {
                black_box(
                    BranchStreams::from_source_sharded(black_box(&trace), shards)
                        .expect("in-memory scans cannot fail"),
                )
            })
        });
        group.bench_function(BenchmarkId::new("classify_sweep", shards), |b| {
            b.iter(|| {
                black_box(Classifier::classify_streams_parallel(
                    black_box(&streams),
                    &cfg,
                    shards,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streams_parallel);
criterion_main!(benches);

//! Offline vendored stand-in for `proptest`.
//!
//! The build container has no network access, so the real `proptest`
//! crate cannot be fetched. This shim keeps the workspace's property
//! tests running with the same source syntax:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`
//! * `prop_assert!` / `prop_assert_eq!`
//! * `any::<T>()`, ranges as strategies, tuple strategies, `prop_map`,
//!   `prop::collection::vec`
//!
//! Differences from real proptest: cases are drawn from a fixed
//! per-test deterministic seed (stable across runs and machines), and
//! failures are reported by plain `assert!` panics without input
//! shrinking. That trades minimal counterexamples for zero external
//! dependencies; the printed case index and deterministic replay make
//! failures reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`cases` = iterations per property).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Build the deterministic RNG for one test case.
///
/// Seeded from an FNV-1a hash of the test name xor the case index, so
/// every property gets an independent, stable stream.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ u64::from(case))
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: Copy + rand::SampleUniform,
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: Copy + rand::SampleUniform,
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "arbitrary value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.gen::<bool>()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::Rng;
                rng.gen::<$ty>()
            }
        })+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` resolves, as with real
    /// proptest's prelude.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::rng_for(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 0u32..10, y in 1usize..=3, b in any::<bool>()) {
            assert!(x < 10);
            assert!((1..=3).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u64..8, any::<bool>()).prop_map(|(a, b)| if b { a } else { 0 }), 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn rng_for_is_stable_per_name_and_case() {
        use rand::RngCore;
        let a = super::rng_for("t", 0).next_u64();
        let b = super::rng_for("t", 0).next_u64();
        let c = super::rng_for("t", 1).next_u64();
        let d = super::rng_for("u", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
